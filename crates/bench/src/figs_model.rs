//! Modeling experiments: §5's dimensionality reduction, campaign design
//! and classifier evaluation (Table 5, Figures 15–16, §5.1/§5.2/§5.4).

use crate::world::World;
use std::collections::BTreeMap;
use yav_campaign::CampaignPlan;
use yav_pme::model::TrainConfig;
use yav_pme::reduce::{reduce, ReductionConfig};
use yav_stats::{Ecdf, PercentileSummary, Summary};
use yav_types::{Adx, IabCategory};

/// §5.1 — dimensionality reduction: 288 features → the core set S.
pub fn dimred(w: &World) -> String {
    if w.feature_sample.len() < 200 {
        return "dimred: not enough cleartext feature rows sampled\n".into();
    }
    let rows: Vec<Vec<f64>> = w.feature_sample.iter().map(|(r, _)| r.clone()).collect();
    let prices: Vec<f64> = w.feature_sample.iter().map(|(_, p)| *p).collect();
    let r = reduce(&rows, &prices, &ReductionConfig::default());
    let mut out = String::from("§5.1 dimensionality reduction (cleartext price classes)\n");
    out += &format!(
        "features: 288 -> {} after variance filters -> {} selected\n",
        r.kept_after_filters.len(),
        r.selected.len()
    );
    out += &format!(
        "full-set  CV: acc {:.3} prec {:.3} rec {:.3}\n",
        r.full_report.accuracy, r.full_report.precision, r.full_report.recall
    );
    out += &format!(
        "core-set  CV: acc {:.3} prec {:.3} rec {:.3}\n",
        r.reduced_report.accuracy, r.reduced_report.precision, r.reduced_report.recall
    );
    out += &format!(
        "precision loss {:.1}% | recall loss {:.1}% (paper: <2% and <6%)\n",
        r.precision_loss() * 100.0,
        r.recall_loss() * 100.0
    );
    out += "selected core features:\n";
    for name in r.selected_names() {
        out += &format!("  {name}\n");
    }
    out
}

/// Table 5 — the 144 campaign setups.
pub fn table5(_w: &World) -> String {
    let setups = yav_campaign::setups::table5(&Adx::CAMPAIGN_TARGETS);
    let mut out = String::from("Table 5: controlled ad-campaign filters\n");
    out += "cities: Madrid, Barcelona, Valencia, Seville\n";
    out += "interaction: mobile in-app | mobile web;  shifts: 12am-9am | 9am-6pm | 6pm-12am\n";
    out += "days: weekday | weekend;  devices: smartphone | tablet;  OS: iOS | Android\n";
    out += "formats: 320x50/300x250/320x480/480x320 (phone), 728x90/300x250/768x1024/1024x768 (tablet)\n";
    out += "exchanges: MoPub, OpenX, Rubicon, DoubleClick, PulsePoint\n";
    out += &format!("=> {} experimental setups, e.g.:\n", setups.len());
    for s in setups.iter().take(4) {
        out += &format!(
            "  <{}, {}, {}, {:?}, {}, {}, {}, {}>\n",
            s.city, s.interaction, s.shift, s.day_type, s.device, s.os, s.format, s.adx
        );
    }
    out
}

/// §5.2 — the sample-size computation from MoPub pseudo-campaigns in D.
pub fn samplesize(w: &World) -> String {
    // Pseudo-campaigns: MoPub detections grouped by (bidder, publisher) —
    // the stable buyer-inventory pairs a real campaign id would mark.
    let mut groups: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for d in &w.report.detections {
        if d.adx != Adx::MoPub {
            continue;
        }
        if let (Some(p), Some(dsp), Some(publ)) =
            (d.cleartext_cpm, d.dsp_domain.clone(), d.publisher.clone())
        {
            groups.entry((dsp, publ)).or_default().push(p.as_f64());
        }
    }
    let means: Vec<f64> = groups
        .values()
        .filter(|v| v.len() >= 5)
        .map(|v| v.iter().sum::<f64>() / v.len() as f64)
        .collect();
    let largest = groups.values().max_by_key(|v| v.len());
    let within_std = largest.map(|v| Summary::of(v).std).unwrap_or(0.7);

    let plan = CampaignPlan::derive(&means, 144, within_std, 0.1, 0.95);
    let mut out = String::from("§5.2 sample-size planning from MoPub pseudo-campaigns in D\n");
    out += &format!("pseudo-campaigns found: {} (paper: 280)\n", means.len());
    out += &format!(
        "campaign price mean {:.2} CPM, std {:.2} (paper: 1.84 / 2.15)\n",
        plan.historical_mean, plan.historical_std
    );
    out += &format!(
        "144 setups => ±{:.2} CPM on the mean at 95% CI (paper: ±0.35)\n",
        plan.setup_margin
    );
    out += &format!(
        "±0.1 CPM per campaign needs ≥{} impressions (paper: 185)\n",
        plan.impressions_per_setup
    );
    out += &format!(
        "paper-reference plan check: ±{:.3} CPM\n",
        CampaignPlan::paper_reference().setup_margin
    );
    out
}

/// Figure 15 — CPM per IAB: dataset vs campaign cleartext vs encrypted.
pub fn fig15(w: &World) -> String {
    let mut out =
        String::from("Figure 15: CPM per IAB — D (MoPub 2m) vs A2 cleartext vs A1 encrypted\n");
    out += &format!(
        "{:<7} {:>24} {:>24} {:>24}\n",
        "IAB", "D p50 (n)", "A2 clr p50 (n)", "A1 enc p50 (n)"
    );
    let start = w.last_two_months_start();
    for iab in IabCategory::ALL {
        let d: Vec<f64> = w
            .report
            .detections
            .iter()
            .filter(|x| {
                x.adx == Adx::MoPub && x.iab == Some(iab) && x.time.month().index() >= start
            })
            .filter_map(|x| x.cleartext_cpm.map(|p| p.as_f64()))
            .collect();
        let a2: Vec<f64> =
            w.a2.rows
                .iter()
                .filter(|r| r.iab == iab)
                .map(|r| r.charge.as_f64())
                .collect();
        let a1: Vec<f64> =
            w.a1.rows
                .iter()
                .filter(|r| r.iab == iab)
                .map(|r| r.charge.as_f64())
                .collect();
        if a1.is_empty() && a2.is_empty() {
            continue;
        }
        let cell = |v: &[f64]| {
            if v.is_empty() {
                "-".to_string()
            } else {
                format!("{:.3} ({})", PercentileSummary::of(v).p50, v.len())
            }
        };
        out += &format!(
            "{:<7} {:>24} {:>24} {:>24}\n",
            iab.label(),
            cell(&d),
            cell(&a2),
            cell(&a1)
        );
    }
    out += "(paper: encrypted medians always above the cleartext ones)\n";
    out
}

/// Figure 16 — price CDF comparison and the §6.1 encrypted premium.
pub fn fig16(w: &World) -> String {
    let series: Vec<(&str, Vec<f64>)> = vec![
        ("A1-encrypted'16", w.a1.prices_cpm()),
        ("A2-mopub'16", w.a2.prices_cpm()),
        ("D-cleartext'15", w.d_cleartext()),
        ("D-mopub'15", w.d_mopub()),
        ("D-mopub'15(2m)", w.d_mopub_2m()),
    ];
    let mut out = String::from("Figure 16: charge-price distributions (CPM)\n");
    out += &format!(
        "{:<18} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "series", "n", "p10", "p25", "p50", "p75", "p90"
    );
    let mut medians: BTreeMap<&str, f64> = BTreeMap::new();
    for (name, prices) in &series {
        if prices.is_empty() {
            continue;
        }
        let e = Ecdf::new(prices);
        medians.insert(name, e.median());
        out += &format!(
            "{:<18} {:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}\n",
            name,
            e.len(),
            e.quantile(0.10),
            e.quantile(0.25),
            e.median(),
            e.quantile(0.75),
            e.quantile(0.90)
        );
    }
    if let (Some(a1), Some(a2)) = (medians.get("A1-encrypted'16"), medians.get("A2-mopub'16")) {
        out += &format!(
            "encrypted/cleartext median ratio: {:.2}x (paper: ~1.7x)\n",
            a1 / a2
        );
    }
    if let (Some(a2), Some(d)) = (medians.get("A2-mopub'16"), medians.get("D-mopub'15")) {
        out += &format!(
            "raw A2/D median ratio: {:.2}x (composition-confounded)\n",
            a2 / d
        );
    }
    out += &format!(
        "stratified §6.2 time-shift used downstream: x{:.2}\n",
        w.shift.coefficient
    );
    out
}

/// §5.4 — the encrypted-price classifier evaluation.
pub fn model(w: &World) -> String {
    let trained = w.pme.trained_model().expect("world trains the PME");
    let cv = &trained.cv;
    let mut out = String::from("§5.4 encrypted-price classifier (Random Forest, 4 classes)\n");
    out += &format!("training rows (subsampled): {}\n", trained.trained_rows);
    out += &format!(
        "10-fold CV x{} runs: TP(=acc) {:.1}%  FP {:.1}%  precision {:.1}%  recall {:.1}%  AUCROC {:.3}\n",
        cv.runs,
        cv.accuracy * 100.0,
        cv.fp_rate * 100.0,
        cv.precision * 100.0,
        cv.recall * 100.0,
        cv.auc_roc
    );
    out += "(paper: TP 82.9%, FP 6.8%, precision 83.5%, recall 82.9%, AUCROC 0.964)\n";
    out += &format!(
        "worst class recall gap: {:.1}% (paper: no class >5% below average)\n",
        cv.worst_class_gap() * 100.0
    );
    out += &format!("OOB error: {:.3}\n", trained.forest.oob_error());
    let (rmse, r2) = trained.regression_baseline;
    out += &format!(
        "regression baseline: RMSE {:.2} CPM, R² {:.2} (paper: high error => switched to classes)\n",
        rmse, r2
    );

    // The overfitting variant with publisher identity.
    let with_pub = yav_pme::model::train(
        &w.a1.rows,
        &TrainConfig {
            with_publisher: true,
            ..w.scale.train_config()
        },
    );
    out += &format!(
        "with exact publisher: acc {:.1}%, AUCROC {:.3} (paper: ~95%/0.99 — overfitting, rejected)\n",
        with_pub.cv.accuracy * 100.0,
        with_pub.cv.auc_roc
    );
    out
}

/// Ablation — number of price classes (§5.4: "we repeated this process
/// with more price classes (5–10 groups) … but the results with 4
/// classes outperformed them"). Accuracy is not comparable across class
/// counts directly (chance level differs), so the table also shows the
/// chance-normalised skill and AUCROC, which is count-invariant.
pub fn ablate_classes(w: &World) -> String {
    let mut out = String::from("Ablation: price-class count (4 vs 5..10)\n");
    out += &format!(
        "{:>7} {:>9} {:>9} {:>9} {:>9}\n",
        "classes", "accuracy", "chance", "skill", "AUCROC"
    );
    let mut quick = w.scale.train_config();
    quick.cv_runs = 1;
    quick.cv_folds = 5;
    for k in [4usize, 5, 6, 8, 10] {
        let cfg = TrainConfig {
            classes: k,
            ..quick.clone()
        };
        let trained = yav_pme::model::train(&w.a1.rows, &cfg);
        let chance = 1.0 / k as f64;
        let skill = (trained.cv.accuracy - chance) / (1.0 - chance);
        out += &format!(
            "{:>7} {:>8.1}% {:>8.1}% {:>8.3} {:>9.3}\n",
            k,
            trained.cv.accuracy * 100.0,
            chance * 100.0,
            skill,
            trained.cv.auc_roc
        );
    }
    out += "(paper keeps 4 classes: best raw performance at usable granularity)\n";
    out
}

/// Ablation — the core feature set: drop one S-feature at a time and
/// measure the §5.4 classifier's accuracy without it (a design-choice
/// check DESIGN.md calls out: which features carry the model).
pub fn ablate_features(w: &World) -> String {
    use yav_ml::{cross_validate, Dataset};
    use yav_pme::model::{encode, feature_names, CoreContext};

    let mut quick = w.scale.train_config();
    quick.cv_runs = 1;
    quick.cv_folds = 5;

    // Build the encoded dataset once.
    let rows = &w.a1.rows;
    let take: Vec<&yav_campaign::ProbeImpression> = if rows.len() > quick.max_rows {
        let stride = rows.len() as f64 / quick.max_rows as f64;
        (0..quick.max_rows)
            .map(|i| &rows[(i as f64 * stride) as usize])
            .collect()
    } else {
        rows.iter().collect()
    };
    let prices: Vec<f64> = take.iter().map(|r| r.charge.as_f64()).collect();
    let disc = yav_ml::Discretizer::fit(&prices, 4);
    let labels: Vec<usize> = prices.iter().map(|&p| disc.assign(p)).collect();
    let feats: Vec<Vec<f64>> = take
        .iter()
        .map(|r| encode(&CoreContext::from(*r), false))
        .collect();
    let names = feature_names(false);
    let full = Dataset::new(feats, labels, 4, names.clone());
    let baseline = cross_validate(&full, &quick.forest, quick.cv_folds, 1, 7);

    let mut out = String::from("Ablation: leave-one-feature-out accuracy (4 classes)\n");
    out += &format!("{:<16} {:>9} {:>8}\n", "dropped", "accuracy", "delta");
    out += &format!(
        "{:<16} {:>8.1}% {:>8}\n",
        "(none)",
        baseline.accuracy * 100.0,
        "-"
    );
    for drop in 0..names.len() {
        let cols: Vec<usize> = (0..names.len()).filter(|&i| i != drop).collect();
        let reduced = full.select_features(&cols);
        let report = cross_validate(&reduced, &quick.forest, quick.cv_folds, 1, 7);
        out += &format!(
            "{:<16} {:>8.1}% {:>+7.1}%\n",
            names[drop],
            report.accuracy * 100.0,
            (report.accuracy - baseline.accuracy) * 100.0
        );
    }
    out += "(large negative deltas mark the load-bearing features)\n";
    out
}
