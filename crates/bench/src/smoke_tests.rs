//! Smoke tests: every experiment builder must produce non-degenerate
//! output on a small world. This is what keeps `figures all` runnable.

#![cfg(test)]

use crate::{figs_dataset as fd, figs_model as fm, figs_user as fu, Scale, World};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(Scale::Small))
}

#[test]
fn world_builds_consistently() {
    let w = world();
    assert!(w.report.detections.len() > 1000);
    assert_eq!(w.report.detections.len(), w.truth.len());
    assert_eq!(w.a1.setups_completed, 144);
    assert_eq!(w.a2.setups_completed, 144);
    assert!(w.pme.version() >= 1);
    assert!(w.shift.coefficient > 1.0, "time shift {:?}", w.shift);
    assert!(!w.feature_sample.is_empty());
}

#[test]
fn dataset_figures_render() {
    let w = world();
    for (name, text) in [
        ("fig2", fd::fig2(w)),
        ("fig3", fd::fig3(w)),
        ("table3", fd::table3(w)),
        ("fig5", fd::fig5(w)),
        ("fig6", fd::fig6(w)),
        ("fig7", fd::fig7(w)),
        ("fig8_9", fd::fig8_9(w)),
        ("fig10", fd::fig10(w)),
        ("fig11", fd::fig11(w)),
        ("fig12", fd::fig12(w)),
        ("fig13", fd::fig13(w)),
        ("fig14", fd::fig14(w)),
        ("table4", fd::table4(w)),
    ] {
        assert!(text.lines().count() >= 3, "{name} too thin:\n{text}");
        assert!(!text.contains("NaN"), "{name} contains NaN:\n{text}");
    }
    // encshare is a deliberate one-liner.
    let share = fd::encrypted_share(w);
    assert!(share.contains('%') && !share.contains("NaN"));
}

#[test]
fn model_figures_render() {
    let w = world();
    for (name, text) in [
        ("table5", fm::table5(w)),
        ("samplesize", fm::samplesize(w)),
        ("fig15", fm::fig15(w)),
        ("fig16", fm::fig16(w)),
        ("model", fm::model(w)),
    ] {
        assert!(text.lines().count() >= 3, "{name} too thin:\n{text}");
        assert!(!text.contains("NaN"), "{name} contains NaN:\n{text}");
    }
}

#[test]
fn user_figures_render() {
    let w = world();
    for (name, text) in [
        ("fig17", fu::fig17(w)),
        ("fig18", fu::fig18(w)),
        ("fig19", fu::fig19(w)),
        ("arpu", fu::arpu(w)),
        ("truth", fu::truth_check(w)),
    ] {
        assert!(text.lines().count() >= 3, "{name} too thin:\n{text}");
        assert!(!text.contains("NaN"), "{name} contains NaN:\n{text}");
    }
}

#[test]
fn headline_bands_hold_at_small_scale() {
    let w = world();
    // Encrypted premium from the campaigns.
    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let ratio = med(w.a1.prices_cpm()) / med(w.a2.prices_cpm());
    assert!((1.3..=2.2).contains(&ratio), "premium {ratio:.2}");

    // Classifier quality (quick config, small data — generous band).
    let trained = w.pme.trained_model().unwrap();
    assert!(
        trained.cv.accuracy > 0.62,
        "accuracy {}",
        trained.cv.accuracy
    );
    assert!(trained.cv.auc_roc > 0.85, "auc {}", trained.cv.auc_roc);

    // The §5.4 negative result.
    let (_, r2) = trained.regression_baseline;
    assert!(r2 < 0.6, "regression R² {r2}");
}
