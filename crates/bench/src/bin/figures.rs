//! The experiment runner: regenerates every table and figure.
//!
//! ```sh
//! cargo run -p yav-bench --release --bin figures -- all --scale mid
//! cargo run -p yav-bench --release --bin figures -- fig16 model --scale paper --threads 8
//! ```
//!
//! Experiment ids match DESIGN.md's per-experiment index: `fig2`, `fig3`,
//! `table3`, `fig5`–`fig14`, `table4`, `dimred`, `table5`, `samplesize`,
//! `fig15`, `fig16`, `model`, `fig17`–`fig19`, `arpu`, `truth`.

use yav_bench::{figs_dataset as fd, figs_model as fm, figs_user as fu, Scale, StreamWorld, World};
use yav_exec::ExecConfig;

const ALL: &[&str] = &[
    "table3",
    "fig2",
    "fig3",
    "encshare",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table4",
    "dimred",
    "table5",
    "samplesize",
    "fig15",
    "fig16",
    "model",
    "fig17",
    "fig18",
    "fig19",
    "arpu",
    "truth",
    "ablate-classes",
    "ablate-features",
];

fn run(world: &World, id: &str) -> Option<String> {
    Some(match id {
        "table3" => fd::table3(world),
        "fig2" => fd::fig2(world),
        "fig3" => fd::fig3(world),
        "encshare" => fd::encrypted_share(world),
        "fig5" => fd::fig5(world),
        "fig6" => fd::fig6(world),
        "fig7" => fd::fig7(world),
        "fig8" | "fig9" => fd::fig8_9(world),
        "fig10" => fd::fig10(world),
        "fig11" => fd::fig11(world),
        "fig12" => fd::fig12(world),
        "fig13" => fd::fig13(world),
        "fig14" => fd::fig14(world),
        "table4" => fd::table4(world),
        "dimred" => fm::dimred(world),
        "table5" => fm::table5(world),
        "samplesize" => fm::samplesize(world),
        "fig15" => fm::fig15(world),
        "fig16" => fm::fig16(world),
        "model" => fm::model(world),
        "fig17" => fu::fig17(world),
        "fig18" => fu::fig18(world),
        "fig19" => fu::fig19(world),
        "arpu" => fu::arpu(world),
        "truth" => fu::truth_check(world),
        "ablate-classes" => fm::ablate_classes(world),
        "ablate-features" => fm::ablate_features(world),
        _ => return None,
    })
}

/// Stops tracing, drains the ring and writes the Chrome trace JSON plus
/// folded stacks next to it.
fn dump_trace(path: &std::path::Path) {
    yav_trace::set_enabled(false);
    let trace = yav_trace::drain();
    if let Err(e) = std::fs::write(path, yav_trace::chrome_trace_json(&trace)) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    let folded = {
        let mut p = path.as_os_str().to_owned();
        p.push(".folded");
        std::path::PathBuf::from(p)
    };
    if let Err(e) = std::fs::write(&folded, yav_trace::folded_stacks(&trace)) {
        eprintln!("cannot write {}: {e}", folded.display());
        std::process::exit(1);
    }
    eprintln!(
        "trace: {} records in {} streams ({} lost to ring wrap) -> {} + {}",
        trace.len(),
        trace.streams.len(),
        trace.dropped(),
        path.display(),
        folded.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Mid;
    let mut exec = ExecConfig::default();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let name = iter.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown scale {name:?}; use small|mid|paper|huge");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                let n = iter.next().and_then(|s| s.parse::<usize>().ok());
                match n {
                    Some(n) if n >= 1 => exec = ExecConfig::with_threads(n),
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                let dir = iter.next().map(String::as_str).unwrap_or("");
                if dir.is_empty() {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--trace" => {
                let path = iter.next().map(String::as_str).unwrap_or("");
                if path.is_empty() {
                    eprintln!("--trace needs an output path (Chrome trace JSON)");
                    std::process::exit(2);
                }
                trace_out = Some(std::path::PathBuf::from(path));
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    ids.dedup();
    if ids.is_empty() && trace_out.is_none() && scale != Scale::Huge {
        eprintln!(
            "usage: figures [all | stream | <experiment ids>] [--scale small|mid|paper|huge] [--threads N] [--out DIR] [--trace FILE]"
        );
        eprintln!("experiments: {} stream", ALL.join(" "));
        eprintln!("--threads N   worker threads for world building (default: all cores, <= 16);");
        eprintln!("              results are identical for every N — only wall-clock changes");
        eprintln!("--trace FILE  record a causal trace of the world build: Chrome trace JSON to");
        eprintln!("              FILE (open in Perfetto) and folded stacks to FILE.folded");
        std::process::exit(2);
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // `stream` runs the constant-memory streaming builder. It is the
    // only experiment at `--scale huge`: the figure experiments walk a
    // materialised detection list, which bounded retention drops.
    let stream_requested = ids.iter().any(|id| id == "stream") || scale == Scale::Huge;
    ids.retain(|id| id != "stream");
    if scale == Scale::Huge && !ids.is_empty() {
        eprintln!(
            "--scale huge streams with bounded retention; figure experiments need \
             materialised detections. Only `stream` runs at this scale (got: {})",
            ids.join(" ")
        );
        std::process::exit(2);
    }
    if stream_requested {
        let trace_this = trace_out.as_ref().filter(|_| ids.is_empty());
        eprintln!(
            "streaming world at {scale:?} scale on {} thread(s) …",
            exec.threads()
        );
        if trace_this.is_some() {
            yav_trace::set_enabled(true);
        }
        let t0 = std::time::Instant::now();
        let world = StreamWorld::build_with(scale, &exec);
        let secs = t0.elapsed().as_secs_f64();
        if let Some(path) = trace_this {
            dump_trace(path);
        }
        eprintln!(
            "stream done in {secs:.1}s ({:.0} events/s)\n",
            world.http_requests as f64 / secs
        );
        let text = yav_bench::stream::report(&world);
        println!("──────────────────────────────────────────── stream");
        println!("{text}");
        if let Some(dir) = &out_dir {
            let path = dir.join("stream.txt");
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
        if ids.is_empty() {
            if let Some(dir) = &out_dir {
                eprintln!("experiment artifacts written to {}", dir.display());
            }
            return;
        }
    }

    eprintln!(
        "building world at {scale:?} scale on {} thread(s) …",
        exec.threads()
    );
    if trace_out.is_some() {
        yav_trace::set_enabled(true);
    }
    let t0 = std::time::Instant::now();
    let world = World::build_with(scale, &exec);
    if let Some(path) = &trace_out {
        dump_trace(path);
    }
    eprintln!(
        "world ready in {:.1}s: {} HTTP requests, {} detections, A1 {} rows, A2 {} rows\n",
        t0.elapsed().as_secs_f64(),
        world.http_requests,
        world.report.detections.len(),
        world.a1.rows.len(),
        world.a2.rows.len()
    );

    for id in &ids {
        match run(&world, id) {
            Some(text) => {
                println!("──────────────────────────────────────────── {id}");
                println!("{text}");
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("cannot write {}: {e}", path.display());
                    }
                }
            }
            None => eprintln!("unknown experiment id {id:?} (skipped)"),
        }
    }
    if let Some(dir) = &out_dir {
        eprintln!("experiment artifacts written to {}", dir.display());
    }
}
