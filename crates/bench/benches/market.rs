//! Market benchmarks: auction throughput.
//!
//! Dataset D needs ~78 k organic auctions and the campaigns close to a
//! million probe auctions, so per-auction cost drives the wall time of
//! every experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_auction::{AdRequest, Market, MarketConfig, ProbeBid};
use yav_types::{
    AdSlotSize, CampaignId, City, Cpm, DeviceType, DspId, IabCategory, InteractionType, Os,
    PublisherId, SimTime, UserId,
};

fn request(i: u64) -> AdRequest {
    AdRequest {
        time: SimTime::from_ymd_hm(2015, 6, 15, 12, 0).plus_minutes((i % 600) as i64),
        user: UserId((i % 500) as u32),
        city: City::from_index((i % 10) as usize),
        os: if i.is_multiple_of(3) {
            Os::Ios
        } else {
            Os::Android
        },
        device: DeviceType::Smartphone,
        interaction: if i.is_multiple_of(2) {
            InteractionType::MobileApp
        } else {
            InteractionType::MobileWeb
        },
        publisher: PublisherId((i % 200) as u32),
        publisher_name: format!("dailynoticias{}.example", i % 200),
        iab: IabCategory::ALL[(i % 18) as usize],
        slot: AdSlotSize::S300x250,
        adx: yav_auction::config::sample_adx((i % 1000) as f64 / 1000.0),
        interest_match: 0.2,
    }
}

fn bench_market(c: &mut Criterion) {
    let mut g = c.benchmark_group("market");
    g.bench_function("construction", |b| {
        b.iter(|| Market::new(MarketConfig::default()))
    });

    let mut market = Market::new(MarketConfig::default());
    let mut i = 0u64;
    g.throughput(Throughput::Elements(1));
    g.bench_function("organic_auction", |b| {
        b.iter(|| {
            i += 1;
            market.run_auction(black_box(&request(i)))
        })
    });

    let probe = ProbeBid {
        dsp: DspId(0),
        max_bid: Cpm::from_whole(30),
        campaign: CampaignId(1),
    };
    g.bench_function("probe_auction", |b| {
        b.iter(|| {
            i += 1;
            market.run_auction_with_probe(black_box(&request(i)), &probe)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_market);
criterion_main!(benches);
