//! Instrumentation overhead: `run_auction` with telemetry recording
//! versus with the global switch off.
//!
//! The acceptance bar for the observability work is < 5 % added cost on
//! the market hot path; comparing the two medians printed here checks
//! it (and the `enabled=false` row doubles as the no-op-path bench).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_auction::{AdRequest, Market, MarketConfig};
use yav_types::{
    AdSlotSize, City, DeviceType, IabCategory, InteractionType, Os, PublisherId, SimTime, UserId,
};

fn request(i: u64) -> AdRequest {
    AdRequest {
        time: SimTime::from_ymd_hm(2015, 6, 15, 12, 0).plus_minutes((i % 600) as i64),
        user: UserId((i % 500) as u32),
        city: City::from_index((i % 10) as usize),
        os: if i.is_multiple_of(3) {
            Os::Ios
        } else {
            Os::Android
        },
        device: DeviceType::Smartphone,
        interaction: if i.is_multiple_of(2) {
            InteractionType::MobileApp
        } else {
            InteractionType::MobileWeb
        },
        publisher: PublisherId((i % 200) as u32),
        publisher_name: format!("dailynoticias{}.example", i % 200),
        iab: IabCategory::ALL[(i % 18) as usize],
        slot: AdSlotSize::S300x250,
        adx: yav_auction::config::sample_adx((i % 1000) as f64 / 1000.0),
        interest_match: 0.2,
    }
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(1));

    let mut market = Market::new(MarketConfig::default());
    let mut i = 0u64;
    yav_telemetry::set_enabled(true);
    g.bench_function("run_auction_instrumented", |b| {
        b.iter(|| {
            i += 1;
            market.run_auction(black_box(&request(i)))
        })
    });

    yav_telemetry::set_enabled(false);
    g.bench_function("run_auction_uninstrumented", |b| {
        b.iter(|| {
            i += 1;
            market.run_auction(black_box(&request(i)))
        })
    });
    yav_telemetry::set_enabled(true);

    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
