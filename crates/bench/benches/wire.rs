//! Wire-format benchmarks: the hot paths of observation.
//!
//! YourAdValue and the analyzer classify *every* HTTP request a device
//! makes, so URL parsing, nURL detection and token handling must stay in
//! the sub-microsecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_crypto::{base64url_decode, base64url_encode, sha256, PriceCrypter, PriceKeys};
use yav_nurl::fields::{NurlFields, PricePayload};
use yav_nurl::{template, NurlDetector, Url};
use yav_types::{Adx, AuctionId, Cpm, DspId, ImpressionId};

fn sample_nurl(adx: Adx, encrypted: bool) -> String {
    let price = if encrypted {
        let c = PriceCrypter::new(PriceKeys::derive("bench"));
        PricePayload::Encrypted(c.encrypt(1_250_000, [7u8; 16]))
    } else {
        PricePayload::Cleartext(Cpm::from_f64(1.25))
    };
    let mut fields = NurlFields::minimal(adx, DspId(3), price, ImpressionId(42), AuctionId(77));
    fields.slot = Some(yav_types::AdSlotSize::S300x250);
    fields.publisher = Some("dailynoticias7.example".into());
    template::emit(&fields).to_string()
}

fn bench_url(c: &mut Criterion) {
    let mut g = c.benchmark_group("url");
    let ordinary = "http://www.dailynoticias7.example/articulo/1234.html?ref=portada&s=3";
    g.throughput(Throughput::Bytes(ordinary.len() as u64));
    g.bench_function("parse_ordinary", |b| {
        b.iter(|| Url::parse(black_box(ordinary)).unwrap())
    });
    let nurl = sample_nurl(Adx::MoPub, false);
    g.throughput(Throughput::Bytes(nurl.len() as u64));
    g.bench_function("parse_nurl", |b| {
        b.iter(|| Url::parse(black_box(&nurl)).unwrap())
    });
    g.finish();
}

fn bench_nurl(c: &mut Criterion) {
    let mut g = c.benchmark_group("nurl");
    let clear = Url::parse(&sample_nurl(Adx::MoPub, false)).unwrap();
    let enc = Url::parse(&sample_nurl(Adx::DoubleClick, true)).unwrap();
    let ordinary = Url::parse("http://cdn.fastassets.example/assets/17.js").unwrap();
    let det = NurlDetector::new();
    g.bench_function("detect_cleartext", |b| {
        b.iter(|| det.detect(black_box(&clear)).unwrap())
    });
    g.bench_function("detect_encrypted", |b| {
        b.iter(|| det.detect(black_box(&enc)).unwrap())
    });
    g.bench_function("detect_miss", |b| {
        b.iter(|| det.detect(black_box(&ordinary)))
    });
    g.bench_function("parse_full_fields", |b| {
        b.iter(|| template::parse(black_box(&clear)).unwrap().unwrap())
    });
    let fields = NurlFields::minimal(
        Adx::MoPub,
        DspId(1),
        PricePayload::Cleartext(Cpm::ONE),
        ImpressionId(1),
        AuctionId(1),
    );
    g.bench_function("emit", |b| b.iter(|| template::emit(black_box(&fields))));
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let crypter = PriceCrypter::new(PriceKeys::derive("bench"));
    g.bench_function("price_encrypt", |b| {
        b.iter(|| crypter.encrypt(black_box(950_000), [9u8; 16]))
    });
    let token = crypter.encrypt(950_000, [9u8; 16]);
    g.bench_function("price_decrypt", |b| {
        b.iter(|| crypter.decrypt(black_box(&token)).unwrap())
    });
    let data = vec![0xA5u8; 4096];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_4k", |b| b.iter(|| sha256(black_box(&data))));
    let blob = vec![0x5Au8; 28];
    g.bench_function("base64url_round_trip", |b| {
        b.iter(|| base64url_decode(&base64url_encode(black_box(&blob))).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_url, bench_nurl, bench_crypto);
criterion_main!(benches);
