//! Tracing overhead: the yav-trace kill switch and the enabled record
//! path, measured on the monitor's ingest hot loop.
//!
//! The acceptance bar for the tracing work is ≤ 2 % added cost on the
//! borrowed-ingest hot path with tracing *disabled* (the switch is one
//! relaxed atomic load and a branch; nothing is named, interned or
//! allocated on the cold side). The enabled rows are informational —
//! tracing on costs real work per record and is a debugging mode, not a
//! steady state. Results land in `BENCH_trace.json`; like the other
//! bench smokes, CI runs this non-gating because shared-runner timing
//! is too noisy to fail a build on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yav_core::YourAdValue;
use yav_nurl::{NurlFields, PricePayload};
use yav_types::{Adx, AuctionId, Cpm, DspId, ImpressionId, SimTime};
use yav_weblog::HttpRequest;

/// ~95 % ordinary traffic, ~5 % well-formed cleartext notifications —
/// the monitor's steady-state diet (tracing records a span per observe
/// and a drop instant per rejection, so the enabled path works on every
/// request either way).
fn mixed_requests(n: usize) -> Vec<HttpRequest> {
    let t = SimTime::from_ymd_hm(2015, 10, 1, 12, 0);
    (0..n)
        .map(|i| {
            let url = if i % 20 == 7 {
                let fields = NurlFields::minimal(
                    Adx::ALL[i % Adx::ALL.len()],
                    DspId((i % 11) as u32),
                    PricePayload::Cleartext(Cpm::from_f64(0.10 + (i % 90) as f64 / 100.0)),
                    ImpressionId(i as u64),
                    AuctionId(i as u64 + 1_000_000),
                );
                yav_nurl::emit(&fields).to_string()
            } else {
                format!(
                    "http://www.dailynoticias{}.example/articles/{}?ref=home",
                    i % 9,
                    i
                )
            };
            HttpRequest::bare(t, &url)
        })
        .collect()
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    let requests = mixed_requests(20_000);
    let mut yav = YourAdValue::new(None);

    yav_trace::set_enabled(false);
    g.bench_function("observe_mixed_20k_tracing_off", |b| {
        b.iter(|| {
            let mut events = 0usize;
            for req in black_box(&requests) {
                events += yav.observe(req).is_some() as usize;
            }
            drop(yav.take_contributions());
            events
        })
    });

    yav_trace::set_enabled(true);
    g.bench_function("observe_mixed_20k_tracing_on", |b| {
        b.iter(|| {
            let mut events = 0usize;
            for req in black_box(&requests) {
                events += yav.observe(req).is_some() as usize;
            }
            drop(yav.take_contributions());
            events
        })
    });
    yav_trace::set_enabled(false);
    drop(yav_trace::drain());

    g.finish();
}

fn bench_baseline(_c: &mut Criterion) {
    // The BENCH_trace.json baseline: best-of wall clock for the raw
    // span primitive and for the end-to-end observe loop, off vs on.
    let best_of = |passes: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        let mut sink = 0usize;
        for _ in 0..passes {
            let t0 = std::time::Instant::now();
            sink = sink.wrapping_add(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        black_box(sink);
        best
    };

    // Raw primitive: one span open/close per iteration.
    let spans = 2_000_000usize;
    let mut spin = || -> usize {
        for i in 0..spans {
            let _s = yav_trace::trace_span!("bench.overhead_probe", i as u64);
        }
        spans
    };
    yav_trace::set_enabled(false);
    let span_off_ns = best_of(10, &mut spin) / spans as f64 * 1e9;
    yav_trace::set_enabled(true);
    let span_on_ns = best_of(10, &mut spin) / spans as f64 * 1e9;
    yav_trace::set_enabled(false);
    drop(yav_trace::drain());

    // End to end: the monitor's serial observe loop over mixed traffic.
    let requests = mixed_requests(200_000);
    let mut yav = YourAdValue::new(None);
    let mut run = || -> usize {
        let mut events = 0usize;
        for req in &requests {
            events += yav.observe(req).is_some() as usize;
        }
        drop(yav.take_contributions());
        events
    };
    yav_trace::set_enabled(false);
    let off_ns = best_of(10, &mut run) / requests.len() as f64 * 1e9;
    yav_trace::set_enabled(true);
    let on_ns = best_of(10, &mut run) / requests.len() as f64 * 1e9;
    yav_trace::set_enabled(false);
    let trace = yav_trace::drain();

    let overhead_pct = (on_ns / off_ns - 1.0) * 100.0;
    println!(
        "trace_overhead: span off {span_off_ns:.2} ns, on {span_on_ns:.2} ns; \
         observe/req off {off_ns:.0} ns, on {on_ns:.0} ns ({overhead_pct:+.1} %); \
         {} records drained ({} dropped to ring wrap)",
        trace.len(),
        trace.dropped()
    );

    let json = format!(
        "[\n  {machine},\n  \
         {{\"bench\":\"span_open_close_tracing_off\",\"ns\":{span_off_ns:.3}}},\n  \
         {{\"bench\":\"span_open_close_tracing_on\",\"ns\":{span_on_ns:.3}}},\n  \
         {{\"bench\":\"observe_mixed_tracing_off\",\"ns_per_req\":{off_ns:.1}}},\n  \
         {{\"bench\":\"observe_mixed_tracing_on\",\"ns_per_req\":{on_ns:.1},\
         \"overhead_pct\":{overhead_pct:.2}}}\n]\n",
        machine = yav_bench::machine_json(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("trace overhead baseline written to {path}");
    }
}

criterion_group!(benches, bench_switch, bench_baseline);
criterion_main!(benches);
