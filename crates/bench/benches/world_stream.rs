//! Streaming world-builder ladder: throughput and peak RSS at
//! 10 k / 100 k / 1 M users.
//!
//! Each rung wall-clocks one [`yav_bench::StreamWorld`] build on the
//! Huge profile (one simulated day, lazy panel) at the rung's panel
//! size and records events per second plus the process peak RSS
//! (`VmHWM`). VmHWM is monotone over the process lifetime, so the
//! ladder runs ascending: each rung's reading is its own peak as long
//! as rungs grow — which is exactly the claim under test (bounded
//! retention means the 1 M rung should *not* dwarf the 100 k rung the
//! way a materialised weblog would).
//!
//! Results land in `BENCH_world.json` at the workspace root. Pass
//! `--quick` (or set `YAV_BENCH_QUICK=1`) to run only the 10 k rung as
//! a smoke test without touching the baseline file — that is what CI's
//! non-gating bench job does.

use yav_bench::{stream, StreamWorld};
use yav_exec::ExecConfig;

struct Rung {
    label: &'static str,
    users: u32,
}

const LADDER: [Rung; 3] = [
    Rung {
        label: "10k",
        users: 10_000,
    },
    Rung {
        label: "100k",
        users: 100_000,
    },
    Rung {
        label: "1m",
        users: 1_000_000,
    },
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("YAV_BENCH_QUICK").is_ok_and(|v| v == "1");
    let rungs: &[Rung] = if quick { &LADDER[..1] } else { &LADDER[..] };
    let exec = ExecConfig::default();

    let mut entries = Vec::new();
    for rung in rungs {
        let t0 = std::time::Instant::now();
        let world = StreamWorld::build_with_users(rung.users, &exec);
        let secs = t0.elapsed().as_secs_f64();
        let events_per_sec = world.http_requests as f64 / secs;
        let peak_rss = yav_telemetry::peak_rss_bytes().unwrap_or(0);
        println!(
            "world_stream/{}: {secs:.2} s, {events_per_sec:.0} events/s, \
             peak RSS {:.1} MiB ({} shards, {} requests, {} detections)",
            rung.label,
            peak_rss as f64 / (1024.0 * 1024.0),
            world.shards,
            world.http_requests,
            world.report.summary.total,
        );
        println!("  {}", stream::describe(&world));
        entries.push(format!(
            "{{\"bench\":\"world_stream\",\"scale\":\"{}\",\"users\":{},\
             \"events_per_sec\":{events_per_sec:.0},\"peak_rss_bytes\":{peak_rss},\
             \"seconds\":{secs:.3}}}",
            rung.label, rung.users
        ));

        // Instrumented twin run: same build, with per-event clock pairs
        // around analyze/monitor and the market histogram delta. Kept
        // separate so the ladder numbers above stay untimed. The untimed
        // world must be gone first — VmHWM is monotone, and two live
        // worlds (PME forest, campaign reports) would charge the ladder
        // ~5 MiB it never uses at steady state.
        drop(world);
        let (timed_world, phases) = StreamWorld::build_with_users_timed(rung.users, &exec);
        let per_event = |ns: u64| ns as f64 / timed_world.http_requests.max(1) as f64;
        let (gen, market, analyze, monitor) = (
            per_event(phases.generate()),
            per_event(phases.market),
            per_event(phases.analyze),
            per_event(phases.monitor),
        );
        println!(
            "  phases (ns/event): generate {gen:.0}, market {market:.0}, \
             analyze {analyze:.0}, monitor {monitor:.0}"
        );
        entries.push(format!(
            "{{\"bench\":\"world_stream_phases\",\"scale\":\"{}\",\"users\":{},\
             \"generate_ns_per_event\":{gen:.0},\"market_ns_per_event\":{market:.0},\
             \"analyze_ns_per_event\":{analyze:.0},\"monitor_ns_per_event\":{monitor:.0}}}",
            rung.label, rung.users
        ));
    }

    if quick {
        println!("quick mode: BENCH_world.json left untouched");
        return;
    }
    let json = format!(
        "[\n  {},\n  {}\n]\n",
        yav_bench::machine_json(),
        entries.join(",\n  ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_world.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("world_stream baseline written to {path}");
    }
}
