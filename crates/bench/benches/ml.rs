//! Machine-learning benchmarks: the PME's training and prediction costs.
//!
//! Training happens server-side on campaign reports (tens of thousands of
//! rows); prediction happens on the client per encrypted notification and
//! must stay in the microsecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_ml::{Dataset, Discretizer, RandomForest, RandomForestConfig, TreeConfig};

/// A deterministic 3-class dataset shaped like campaign ground truth:
/// mixed ordinal features, feature-driven labels with mild noise.
fn dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let city = (i % 4) as f64;
        let tod = ((i / 4) % 6) as f64;
        let iab = ((i * 7) % 18) as f64;
        let app = ((i / 3) % 2) as f64;
        let noise = ((i * 131) % 17) as f64;
        let score = iab * 0.4 + app * 3.0 + tod * 0.3 + city * 0.1 + (noise - 8.0) * 0.05;
        let label = if score < 2.5 {
            0
        } else if score < 5.0 {
            1
        } else {
            2
        };
        rows.push(vec![city, tod, iab, app, noise]);
        labels.push(label);
    }
    Dataset::new(
        rows,
        labels,
        3,
        ["city", "tod", "iab", "app", "noise"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

fn bench_discretizer(c: &mut Criterion) {
    let prices: Vec<f64> = (0..5000)
        .map(|i| 0.05 * 1.002f64.powi(i % 2000) * (1.0 + (i % 7) as f64 / 7.0))
        .collect();
    c.bench_function("ml/discretizer_fit_5k", |b| {
        b.iter(|| Discretizer::fit(black_box(&prices), 4))
    });
    let d = Discretizer::fit(&prices, 4);
    c.bench_function("ml/discretizer_assign", |b| {
        b.iter(|| d.assign(black_box(1.3)))
    });
}

fn bench_forest(c: &mut Criterion) {
    let data = dataset(4000);
    let cfg = RandomForestConfig {
        n_trees: 15,
        tree: TreeConfig {
            max_depth: 12,
            ..TreeConfig::default()
        },
        seed: 1,
        threads: 4,
    };
    let mut g = c.benchmark_group("ml");
    g.sample_size(10);
    g.bench_function("forest_fit_4k_rows", |b| {
        b.iter(|| RandomForest::fit(&data, &cfg))
    });
    g.finish();

    let forest = RandomForest::fit(&data, &cfg);
    let row = data.row(17).to_vec();
    let mut g = c.benchmark_group("ml_predict");
    g.throughput(Throughput::Elements(1));
    g.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict(black_box(&row)))
    });
    let tree = forest.representative_tree(&data);
    g.bench_function("tree_predict", |b| b.iter(|| tree.predict(black_box(&row))));
    g.finish();
}

criterion_group!(benches, bench_discretizer, bench_forest);
criterion_main!(benches);
