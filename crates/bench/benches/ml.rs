//! Machine-learning benchmarks: the PME's training and prediction costs.
//!
//! Training happens server-side on campaign reports (tens of thousands of
//! rows); prediction happens on the client per encrypted notification and
//! must stay in the microsecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_ml::{CompiledForest, Dataset, Discretizer, RandomForest, RandomForestConfig, TreeConfig};

/// A deterministic 3-class dataset shaped like campaign ground truth:
/// mixed ordinal features, feature-driven labels with mild noise.
fn dataset(n: usize) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let city = (i % 4) as f64;
        let tod = ((i / 4) % 6) as f64;
        let iab = ((i * 7) % 18) as f64;
        let app = ((i / 3) % 2) as f64;
        let noise = ((i * 131) % 17) as f64;
        let score = iab * 0.4 + app * 3.0 + tod * 0.3 + city * 0.1 + (noise - 8.0) * 0.05;
        let label = if score < 2.5 {
            0
        } else if score < 5.0 {
            1
        } else {
            2
        };
        rows.push(vec![city, tod, iab, app, noise]);
        labels.push(label);
    }
    Dataset::new(
        rows,
        labels,
        3,
        ["city", "tod", "iab", "app", "noise"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

fn bench_discretizer(c: &mut Criterion) {
    let prices: Vec<f64> = (0..5000)
        .map(|i| 0.05 * 1.002f64.powi(i % 2000) * (1.0 + (i % 7) as f64 / 7.0))
        .collect();
    c.bench_function("ml/discretizer_fit_5k", |b| {
        b.iter(|| Discretizer::fit(black_box(&prices), 4))
    });
    let d = Discretizer::fit(&prices, 4);
    c.bench_function("ml/discretizer_assign", |b| {
        b.iter(|| d.assign(black_box(1.3)))
    });
}

fn bench_forest(c: &mut Criterion) {
    let data = dataset(4000);
    let cfg = RandomForestConfig {
        n_trees: 15,
        tree: TreeConfig {
            max_depth: 12,
            ..TreeConfig::default()
        },
        seed: 1,
        threads: 4,
    };
    let mut g = c.benchmark_group("ml");
    g.sample_size(10);
    g.bench_function("forest_fit_4k_rows", |b| {
        b.iter(|| RandomForest::fit(&data, &cfg))
    });
    g.finish();

    let forest = RandomForest::fit(&data, &cfg);
    let row = data.row(17).to_vec();
    let mut g = c.benchmark_group("ml_predict");
    g.throughput(Throughput::Elements(1));
    g.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict(black_box(&row)))
    });
    let tree = forest.representative_tree(&data);
    g.bench_function("tree_predict", |b| b.iter(|| tree.predict(black_box(&row))));
    let compiled = CompiledForest::compile(&forest);
    let mut probs = vec![0.0f64; 3];
    g.bench_function("compiled_predict_into", |b| {
        b.iter(|| {
            compiled.predict_into(black_box(&row), &mut probs);
            probs[0]
        })
    });
    g.finish();
}

fn bench_compiled(_c: &mut Criterion) {
    // The BENCH_ml.json baseline: training cost plus the three prediction
    // paths — the seed per-row arena walker, the compiled single-row
    // walker, and the cache-blocked compiled batch — wall-clocked
    // manually over the whole dataset so the numbers are directly
    // comparable per row (the acceptance bar is batch ≥ 3× arena).
    //
    // Production-shaped forest: sklearn-default 100 trees over a
    // campaign-sized report (the PME trains on tens of thousands of
    // rows), large enough that the ensemble no longer fits in L1 and the
    // arena walker's pointer chasing pays real memory latency.
    let data = dataset(20_000);
    let cfg = RandomForestConfig {
        n_trees: 100,
        tree: TreeConfig {
            max_depth: 16,
            ..TreeConfig::default()
        },
        seed: 1,
        threads: 4,
    };

    let mut train_secs = f64::INFINITY;
    let mut forest = RandomForest::fit(&data, &cfg);
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        forest = RandomForest::fit(&data, &cfg);
        train_secs = train_secs.min(t0.elapsed().as_secs_f64());
    }
    let compiled = CompiledForest::compile(&forest);
    let n = data.len();
    let flat: Vec<f64> = (0..n).flat_map(|r| data.row(r).to_vec()).collect();

    // Per-path timing: whole-dataset passes, best-of to shed scheduler
    // noise; a checksum sink keeps the work observable.
    let time_per_row = |passes: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        let mut sink = 0usize;
        for _ in 0..passes {
            let t0 = std::time::Instant::now();
            sink = sink.wrapping_add(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        black_box(sink);
        best / n as f64
    };

    let arena = time_per_row(30, &mut || {
        (0..n).map(|r| forest.predict(data.row(r))).sum()
    });
    let mut probs = vec![0.0f64; data.n_classes()];
    let single = time_per_row(30, &mut || {
        (0..n)
            .map(|r| compiled.predict_with(data.row(r), &mut probs))
            .sum()
    });
    let batch = time_per_row(30, &mut || {
        compiled
            .predict_batch(&flat, data.n_features())
            .iter()
            .sum()
    });

    let speedup = arena / batch;
    println!(
        "ml/train_20k_rows: {train_secs:.3} s; per-row ns: arena {:.0}, compiled single {:.0}, \
         compiled batch {:.0} ({speedup:.1}x vs arena)",
        arena * 1e9,
        single * 1e9,
        batch * 1e9,
    );
    let json = format!(
        "[\n  {machine},\n  {{\"bench\":\"ml_train\",\"rows\":{n},\"trees\":{trees},\"seconds\":{train_secs:.3}}},\n  \
         {{\"bench\":\"ml_predict_arena_per_row\",\"ns_per_row\":{arena:.1}}},\n  \
         {{\"bench\":\"ml_predict_compiled_single\",\"ns_per_row\":{single:.1}}},\n  \
         {{\"bench\":\"ml_predict_compiled_batch\",\"ns_per_row\":{batch:.1},\"speedup_vs_arena\":{speedup:.2}}}\n]\n",
        machine = yav_bench::machine_json(),
        trees = cfg.n_trees,
        arena = arena * 1e9,
        single = single * 1e9,
        batch = batch * 1e9,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ml.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("ml baseline written to {path}");
    }
}

criterion_group!(benches, bench_discretizer, bench_forest, bench_compiled);
criterion_main!(benches);
