//! Ingestion-throughput benchmarks: the zero-copy nURL pipeline.
//!
//! The monitor and analyzer both sit on the device's full request
//! stream, of which ~95% is ordinary traffic that must be rejected as
//! cheaply as possible and ~5% is ad traffic worth parsing. This bench
//! wall-clocks three ingestion strategies over the same streams:
//!
//! * `owned` — parse every request with the owning `Url` parser, then
//!   template-parse exchange URLs (the analyzer's pre-zero-copy shape:
//!   several heap allocations per request, notification or not);
//! * `screened` — host-screen first, owning parse only for exchange
//!   URLs (the monitor's pre-zero-copy shape);
//! * `borrowed` — `UrlRef` + reusable `UrlScratch` end to end (the
//!   current shape: no steady-state allocation anywhere).
//!
//! plus the end-to-end monitor: serial `observe` vs `observe_batch`.
//! Results land in `BENCH_ingest.json`; the acceptance bar is borrowed
//! ≥ 3× owned on the mixed stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yav_core::YourAdValue;
use yav_crypto::{PriceCrypter, PriceKeys};
use yav_nurl::fields::PricePayload;
use yav_nurl::{template, NurlFields, Url, UrlRef, UrlScratch};
use yav_pme::model::{ClientModel, TrainConfig};
use yav_types::{Adx, AuctionId, Cpm, DspId, ImpressionId, SimTime};
use yav_weblog::HttpRequest;

/// Ordinary-traffic URL shapes (hosts the exchange screen rejects).
fn ordinary_url(i: usize) -> String {
    match i % 5 {
        0 => format!(
            "http://www.dailynoticias{}.example/articles/{}?ref=home",
            i % 9,
            i
        ),
        1 => format!("https://cdn.fastassets.example/lib/v{}/app.min.js", i % 40),
        2 => format!(
            "https://metricsrus.example/collect?sid={}&ev=pv&ts={}",
            i * 7,
            i
        ),
        3 => format!(
            "http://api.superdeporte.app{}.example/feed?page={}&utm_source=social",
            i % 6,
            i % 30
        ),
        _ => format!(
            "https://fotogrid.example/u/{}/grid?size=200x200&cb=%7B%22v%22%3A{}%7D",
            i % 1000,
            i
        ),
    }
}

/// One well-formed notification per call, cycling exchanges and price
/// visibility.
fn nurl(i: usize, crypter: &PriceCrypter) -> String {
    let adx = Adx::ALL[i % Adx::ALL.len()];
    let price = if i.is_multiple_of(2) {
        PricePayload::Cleartext(Cpm::from_f64(0.10 + (i % 90) as f64 / 100.0))
    } else {
        PricePayload::Encrypted(crypter.encrypt(500_000 + i as u64, [i as u8; 16]))
    };
    let fields = NurlFields::minimal(
        adx,
        DspId((i % 11) as u32),
        price,
        ImpressionId(i as u64),
        AuctionId(i as u64 + 1_000_000),
    );
    yav_nurl::emit(&fields).to_string()
}

/// Hostile shapes: truncations, bad escapes, junk.
fn hostile_url(i: usize) -> String {
    match i % 6 {
        0 => String::new(),
        1 => "not a url at all".to_owned(),
        2 => "http://cpp.imp.mpx.mopub.com/imp?%zz=1".to_owned(),
        3 => "http://ex ample.com/".to_owned(),
        4 => format!(
            "http://cpp.imp.mpx.mopub.com/imp?charge_price=0.5&pad={}",
            "%".repeat(i % 50)
        ),
        _ => "http://cpp.imp.mpx.mopub.com/imp?charge_price=".to_owned(),
    }
}

/// The realistic stream: ~95% ordinary, ~4% notifications, ~1% hostile.
fn mixed_stream(n: usize, crypter: &PriceCrypter) -> Vec<String> {
    (0..n)
        .map(|i| match i % 100 {
            7 | 23 | 51 | 89 => nurl(i, crypter),
            99 => hostile_url(i),
            _ => ordinary_url(i),
        })
        .collect()
}

/// Owned-parser ingestion: every request pays `Url::parse`.
fn ingest_owned(urls: &[String]) -> usize {
    let mut matched = 0;
    for raw in urls {
        let Ok(url) = Url::parse(raw) else { continue };
        if yav_nurl::exchange_host(url.host()).is_some() {
            if let Ok(Some(_)) = template::parse(&url) {
                matched += 1;
            }
        }
    }
    matched
}

/// Screened owned ingestion: host screen first, owned parse on
/// survivors. The screen's verdict (which exchange matched) carries
/// into the parse, so the host roster is scanned once per URL.
fn ingest_screened(urls: &[String]) -> usize {
    let mut matched = 0;
    for raw in urls {
        let Ok(adx) = yav_nurl::screen_adx(raw) else {
            continue;
        };
        let Ok(url) = Url::parse(raw) else { continue };
        if let Ok(Some(_)) = template::parse_screened(adx, &url) {
            matched += 1;
        }
    }
    matched
}

/// Borrowed zero-copy ingestion with a reusable scratch — the monitor's
/// sift shape: authority-only screen carrying its verdict into the
/// borrowed parse, so survivors never re-scan the host roster.
fn ingest_borrowed(urls: &[String], scratch: &mut UrlScratch) -> usize {
    let mut matched = 0;
    for raw in urls {
        let Ok(adx) = yav_nurl::screen_adx(raw) else {
            continue;
        };
        let Ok(url) = UrlRef::parse(raw) else {
            continue;
        };
        if let Ok(Some(_)) = template::parse_borrowed_screened(adx, &url, scratch) {
            matched += 1;
        }
    }
    matched
}

/// One training run, both client artifacts: the paper-default 40-tree
/// forest shipped whole (`ClientArtifact::Forest`) plus the §3.2
/// single-tree client derived from the same run. Cross-validation is cut
/// to one 2-fold pass — the bench needs the estimator, not the CV table.
fn trained_models() -> (ClientModel, ClientModel) {
    let mut market = yav_auction::Market::new(yav_auction::MarketConfig::default());
    let universe = yav_weblog::PublisherUniverse::build(0xD474, 300, 120);
    let rows = yav_campaign::execute(
        &mut market,
        &universe,
        &yav_campaign::Campaign::a1().scaled(10),
    )
    .rows;
    let pme = yav_pme::engine::Pme::new();
    pme.train_from_campaign(
        &rows,
        &TrainConfig {
            artifact: yav_pme::ClientArtifact::Forest,
            cv_folds: 2,
            cv_runs: 1,
            max_rows: 6_000,
            ..TrainConfig::default()
        },
    );
    let forest = pme.current_model().expect("model just trained");
    let tree = ClientModel {
        artifact: yav_pme::ClientArtifact::Tree,
        compiled: yav_ml::CompiledForest::from_tree(&forest.tree),
        ..forest.clone()
    };
    (tree, forest)
}

fn bench_parsers(c: &mut Criterion) {
    let crypter = PriceCrypter::new(PriceKeys::derive("ingest-bench"));
    let stream = mixed_stream(20_000, &crypter);
    let mut scratch = UrlScratch::new();
    let mut g = c.benchmark_group("ingest");
    g.sample_size(20);
    g.bench_function("owned_mixed_20k", |b| {
        b.iter(|| ingest_owned(black_box(&stream)))
    });
    g.bench_function("screened_mixed_20k", |b| {
        b.iter(|| ingest_screened(black_box(&stream)))
    });
    g.bench_function("borrowed_mixed_20k", |b| {
        b.iter(|| ingest_borrowed(black_box(&stream), &mut scratch))
    });
    g.finish();
}

fn bench_baseline(_c: &mut Criterion) {
    // The BENCH_ingest.json baseline: per-request ns for each ingestion
    // strategy on each stream, plus the end-to-end monitor serial vs
    // batch — manual best-of wall clock so rows are directly comparable.
    let crypter = PriceCrypter::new(PriceKeys::derive("ingest-bench"));
    let n = 200_000;
    let mixed = mixed_stream(n, &crypter);
    let nurls: Vec<String> = (0..20_000).map(|i| nurl(i, &crypter)).collect();
    let hostile: Vec<String> = (0..20_000).map(hostile_url).collect();

    let per_req = |rows: usize, passes: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        let mut sink = 0usize;
        for _ in 0..passes {
            let t0 = std::time::Instant::now();
            sink = sink.wrapping_add(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        black_box(sink);
        best / rows as f64 * 1e9
    };

    let mut scratch = UrlScratch::new();
    let mut results = Vec::new();
    for (stream_name, urls) in [("mixed", &mixed), ("nurl", &nurls), ("hostile", &hostile)] {
        let owned = per_req(urls.len(), 10, &mut || ingest_owned(urls));
        let screened = per_req(urls.len(), 10, &mut || ingest_screened(urls));
        let borrowed = per_req(urls.len(), 10, &mut || ingest_borrowed(urls, &mut scratch));
        println!(
            "ingest/{stream_name}: per-req ns owned {owned:.0}, screened {screened:.0}, \
             borrowed {borrowed:.0} ({:.1}x vs owned)",
            owned / borrowed
        );
        results.push((stream_name, owned, screened, borrowed));
    }

    // SIMD dispatch smoke: the same borrowed ingest under every forced
    // tier — scalar reference, SWAR portable fallback, and whatever
    // native tiers the host offers. The cross_impl suite proves the
    // tiers bit-identical, so any delta here is pure kernel speed.
    let mut dispatch_rows = Vec::new();
    for lvl in yav_simd::Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
    {
        yav_simd::force_level(Some(lvl));
        let mixed_ns = per_req(mixed.len(), 10, &mut || {
            ingest_borrowed(&mixed, &mut scratch)
        });
        let nurl_ns = per_req(nurls.len(), 10, &mut || {
            ingest_borrowed(&nurls, &mut scratch)
        });
        println!(
            "ingest/simd_dispatch[{}]: per-req ns mixed {mixed_ns:.0}, nurl {nurl_ns:.0}",
            lvl.name()
        );
        dispatch_rows.push((lvl.name(), mixed_ns, nurl_ns));
    }
    yav_simd::force_level(None);

    // End-to-end monitor, serial vs batch, under both client artifacts.
    // On the mixed stream the sift dominates (and is identical in both
    // paths), so batch ≈ serial regardless of artifact; the
    // all-notification stream is measured twice: the §3.2 single-tree
    // client (prediction is a rounding error there) and the full-forest
    // client, where `predict_batch`'s level-synchronous traversal is the
    // whole story.
    let t = SimTime::from_ymd_hm(2015, 10, 1, 12, 0);
    let (tree_model, forest_model) = trained_models();
    let mut observe_rows = Vec::new();
    for (stream_name, urls, model) in [
        ("mixed", &mixed, &tree_model),
        ("nurl", &nurls, &tree_model),
        ("nurl", &nurls, &forest_model),
    ] {
        let client = model.artifact.name();
        let requests: Vec<HttpRequest> = urls.iter().map(|u| HttpRequest::bare(t, u)).collect();

        let mut serial = YourAdValue::new(None);
        serial.install_model(model.clone());
        let observe_serial = per_req(requests.len(), 5, &mut || {
            let mut events = 0;
            for req in &requests {
                if serial.observe(req).is_some() {
                    events += 1;
                }
            }
            drop(serial.take_contributions());
            events
        });

        let mut batched = YourAdValue::new(None);
        batched.install_model(model.clone());
        // The staged batch path times each pass into
        // `ingest.batch.{sift,predict,commit}.us`; delta the exact sums
        // around the run for a per-request phase breakdown.
        let phases = [
            yav_telemetry::histogram("ingest.batch.sift.us"),
            yav_telemetry::histogram("ingest.batch.predict.us"),
            yav_telemetry::histogram("ingest.batch.commit.us"),
        ];
        let sums_before: Vec<f64> = phases.iter().map(|h| h.snapshot().sum).collect();
        let passes = 5;
        let observe_batch = per_req(requests.len(), passes, &mut || {
            let mut events = 0;
            for chunk in requests.chunks(4096) {
                events += batched.observe_batch(chunk).len();
            }
            drop(batched.take_contributions());
            events
        });
        let total_reqs = (requests.len() * passes) as f64;
        let phase_ns: Vec<f64> = phases
            .iter()
            .zip(&sums_before)
            .map(|(h, before)| (h.snapshot().sum - before) * 1e3 / total_reqs)
            .collect();
        println!(
            "ingest/observe_{stream_name}[{client}]: per-req ns serial {observe_serial:.0}, \
             batch {observe_batch:.0} ({:.2}x; sift {:.0} + predict {:.0} + commit {:.0})",
            observe_serial / observe_batch,
            phase_ns[0],
            phase_ns[1],
            phase_ns[2]
        );
        observe_rows.push((stream_name, client, observe_serial, observe_batch, phase_ns));
    }

    let mut json = String::from("[\n");
    json.push_str(&format!("  {},\n", yav_bench::machine_json()));
    for (stream_name, owned, screened, borrowed) in &results {
        json.push_str(&format!(
            "  {{\"bench\":\"ingest_owned_{stream_name}\",\"ns_per_req\":{owned:.1}}},\n  \
             {{\"bench\":\"ingest_screened_{stream_name}\",\"ns_per_req\":{screened:.1}}},\n  \
             {{\"bench\":\"ingest_borrowed_{stream_name}\",\"ns_per_req\":{borrowed:.1},\
             \"speedup_vs_owned\":{:.2}}},\n",
            owned / borrowed
        ));
    }
    for (level, mixed_ns, nurl_ns) in &dispatch_rows {
        json.push_str(&format!(
            "  {{\"bench\":\"simd_dispatch_mixed\",\"level\":\"{level}\",\
             \"ns_per_req\":{mixed_ns:.1}}},\n  \
             {{\"bench\":\"simd_dispatch_nurl\",\"level\":\"{level}\",\
             \"ns_per_req\":{nurl_ns:.1}}},\n"
        ));
    }
    // Every observe row names the client artifact it ran under. The
    // unsuffixed nurl rows are the full-forest client (the artifact the
    // batch path exists for); the `_tree` twins keep the §3.2 default
    // client comparable across recordings.
    for (i, (stream_name, client, serial, batch, phase_ns)) in observe_rows.iter().enumerate() {
        let tail = if i + 1 == observe_rows.len() {
            "\n]\n"
        } else {
            ",\n"
        };
        let suffix = if *stream_name == "nurl" && *client == "tree" {
            "_tree"
        } else {
            ""
        };
        json.push_str(&format!(
            "  {{\"bench\":\"observe_serial_{stream_name}{suffix}\",\"client\":\"{client}\",\
             \"ns_per_req\":{serial:.1}}},\n  \
             {{\"bench\":\"observe_batch_{stream_name}{suffix}\",\"client\":\"{client}\",\
             \"ns_per_req\":{batch:.1},\
             \"speedup_vs_serial\":{:.2},\"sift_ns\":{:.1},\"predict_ns\":{:.1},\
             \"commit_ns\":{:.1}}}{tail}",
            serial / batch,
            phase_ns[0],
            phase_ns[1],
            phase_ns[2]
        ));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
    } else {
        println!("ingest baseline written to {path}");
    }
}

criterion_group!(benches, bench_parsers, bench_baseline);
criterion_main!(benches);
