//! Pipeline benchmarks: analyzer and client ingestion throughput.
//!
//! The analyzer streams millions of HTTP records per experiment; the
//! client sifts every request a device makes. Both must sustain well
//! over 10^5 requests per second.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use yav_analyzer::features::{extract, extract_into, NurlTransport};
use yav_analyzer::userstate::{GlobalState, UserState};
use yav_analyzer::WeblogAnalyzer;
use yav_auction::{Market, MarketConfig};
use yav_core::YourAdValue;
use yav_pme::model::TrainConfig;
use yav_pme::Pme;
use yav_weblog::{HttpRequest, PublisherUniverse, WeblogConfig, WeblogGenerator};

/// A deterministic mixed-traffic batch (content, trackers, nURLs).
fn traffic() -> Vec<HttpRequest> {
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    generator.collect(&mut market).requests
}

fn bench_analyzer(c: &mut Criterion) {
    let reqs = traffic();
    let mut g = c.benchmark_group("analyzer");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("ingest_stream", |b| {
        b.iter(|| {
            let mut analyzer = WeblogAnalyzer::new();
            for r in &reqs {
                black_box(analyzer.ingest(r));
            }
            analyzer.finish().detections.len()
        })
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    // Extract the 288-feature vector from a prepared detection.
    let reqs = traffic();
    let mut analyzer = WeblogAnalyzer::new();
    let mut sample = None;
    for r in &reqs {
        if let Some(rec) = analyzer.ingest(r) {
            sample = Some(rec.meta);
            break;
        }
    }
    let meta = sample.expect("trace contains detections");
    let user = UserState::new();
    let global = GlobalState::default();
    let transport = NurlTransport::default();
    c.bench_function("features/extract_288", |b| {
        b.iter(|| extract(black_box(&meta), &transport, &user, &global))
    });
    // Buffer-reusing variant: the allocation-free hot path.
    c.bench_function("features/extract_288_into", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            extract_into(&mut buf, black_box(&meta), &transport, &user, &global);
            black_box(buf.len())
        })
    });
}

fn bench_client(c: &mut Criterion) {
    let reqs = traffic();
    // Train a model once so encrypted estimation is exercised.
    let mut market = Market::new(MarketConfig::default());
    let universe = PublisherUniverse::build(0xD474, 300, 120);
    let rows = yav_campaign::execute(
        &mut market,
        &universe,
        &yav_campaign::Campaign::a1().scaled(8),
    )
    .rows;
    let pme = Pme::new();
    pme.train_from_campaign(&rows, &TrainConfig::quick());
    let model = pme.current_model().unwrap();

    let mut g = c.benchmark_group("client");
    g.throughput(Throughput::Elements(reqs.len() as u64));
    g.bench_function("observe_stream", |b| {
        b.iter(|| {
            let mut yav = YourAdValue::new(Some(yav_types::City::Madrid));
            yav.install_model(model.clone());
            for r in &reqs {
                black_box(yav.observe(r));
            }
            yav.ledger().len()
        })
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("weblog/generate_tiny", |b| {
        b.iter(|| {
            let generator = WeblogGenerator::new(WeblogConfig::tiny());
            let mut market = Market::new(MarketConfig::default());
            let mut n = 0u64;
            generator.run(&mut market, |_| n += 1, |_| {});
            n
        })
    });
}

fn bench_world(_c: &mut Criterion) {
    // A Small-scale world build runs for seconds — far past the harness's
    // minimum sample count — so this benchmark wall-clocks single builds
    // manually, once serial and once at the machine's parallelism. The
    // BENCH_world.json baseline is owned by `benches/world_stream.rs`,
    // which records the streaming builder's 10k/100k/1M ladder.
    use yav_bench::{Scale, World};
    use yav_exec::{default_threads, ExecConfig};
    let mut counts = vec![1usize, default_threads()];
    counts.dedup();
    for &threads in &counts {
        let t0 = std::time::Instant::now();
        let world = World::build_with(Scale::Small, &ExecConfig::with_threads(threads));
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "world_build/small/threads={threads}: {secs:.2} s \
             ({} requests, {} detections, A1 {} rows)",
            world.http_requests,
            world.report.detections.len(),
            world.a1.rows.len()
        );
    }
}

criterion_group!(
    benches,
    bench_analyzer,
    bench_features,
    bench_client,
    bench_generator,
    bench_world
);
criterion_main!(benches);
