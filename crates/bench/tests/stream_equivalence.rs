//! Equivalence proofs between the three world builders.
//!
//! * [`World::build_materialized`] (collect the full weblog, then
//!   analyze) and [`World::build_with`] (fused generate→analyze) must be
//!   **bit-identical**: same shard structure, same shard markets, same
//!   per-request analyzer walk — materialisation is a memory strategy,
//!   never a semantic input.
//! * [`StreamWorld::build_with`] (constant-memory fold, bounded
//!   retention) must agree exactly on every aggregate it retains, for
//!   any thread count.
//!
//! Together with `determinism.rs` this pins the tentpole claim: you can
//! swap builders (and thread counts) freely and every figure that can
//! still be computed comes out the same bytes.

use yav_bench::{Scale, StreamWorld, World};
use yav_exec::ExecConfig;

/// Field-by-field bit-identity between two materialising worlds.
fn assert_worlds_identical(a: &World, b: &World) {
    assert_eq!(a.http_requests, b.http_requests);
    assert_eq!(a.report.detections, b.report.detections);
    assert_eq!(a.report.summary, b.report.summary);
    assert_eq!(a.report.class_counts, b.report.class_counts);
    assert_eq!(a.report.monthly_os_requests, b.report.monthly_os_requests);
    assert_eq!(a.report.total_requests, b.report.total_requests);
    assert_eq!(a.report.users_seen, b.report.users_seen);
    assert_eq!(a.report.malformed_nurls, b.report.malformed_nurls);
    assert_eq!(a.report.pairs.figure2(), b.report.pairs.figure2());
    assert_eq!(a.report.pairs.figure3(), b.report.pairs.figure3());
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.a1.rows, b.a1.rows);
    assert_eq!(a.a2.rows, b.a2.rows);
    assert_eq!(a.a1.spent, b.a1.spent);
    assert_eq!(a.a2.spent, b.a2.spent);
    assert_eq!(a.feature_sample, b.feature_sample);
    assert_eq!(a.shift, b.shift);
}

#[test]
fn materialized_equals_fused_at_small() {
    let exec = ExecConfig::with_threads(2);
    let fused = World::build_with(Scale::Small, &exec);
    let materialized = World::build_materialized(Scale::Small, &exec);
    assert!(
        fused.report.detections.len() > 500,
        "small world too thin to prove anything"
    );
    assert_worlds_identical(&fused, &materialized);
}

#[test]
fn materialized_equals_fused_across_thread_counts() {
    // The cross product: materialisation strategy × thread count. All
    // four corners must be the same bytes.
    let serial = World::build_with(Scale::Small, &ExecConfig::serial());
    for threads in [1usize, 4] {
        let exec = ExecConfig::with_threads(threads);
        assert_worlds_identical(&serial, &World::build_with(Scale::Small, &exec));
        assert_worlds_identical(&serial, &World::build_materialized(Scale::Small, &exec));
    }
}

#[test]
fn stream_aggregates_equal_materialized_at_small() {
    // The streaming builder drops the detection list; everything it
    // keeps must match the materialising reference exactly — and the
    // figures computable from summaries must therefore match too.
    let exec = ExecConfig::with_threads(2);
    let stream = StreamWorld::build_with(Scale::Small, &exec);
    let world = World::build_materialized(Scale::Small, &exec);

    assert!(stream.report.detections.is_empty());
    assert_eq!(stream.report.summary, world.report.summary);
    assert_eq!(stream.report.class_counts, world.report.class_counts);
    assert_eq!(
        stream.report.monthly_os_requests,
        world.report.monthly_os_requests
    );
    assert_eq!(stream.report.total_requests, world.report.total_requests);
    assert_eq!(stream.report.users_seen, world.report.users_seen);
    assert_eq!(stream.report.malformed_nurls, world.report.malformed_nurls);
    assert_eq!(stream.http_requests, world.http_requests);
    assert_eq!(stream.a1.rows, world.a1.rows);
    assert_eq!(stream.a2.rows, world.a2.rows);
    assert_eq!(stream.truth.impressions as usize, world.truth.len());

    // The summary-driven mean must equal the detection-driven mean to
    // the last bit of the shared f64 arithmetic.
    let d_clear = world.d_cleartext();
    let mean_mat = d_clear.iter().sum::<f64>() / d_clear.len() as f64;
    let mean_stream = stream.report.summary.mean_cleartext_cpm().unwrap();
    assert!(
        (mean_mat - mean_stream).abs() < 1e-9,
        "cleartext means diverge: {mean_mat} vs {mean_stream}"
    );
}

#[test]
fn stream_is_thread_count_independent() {
    let one = StreamWorld::build_with(Scale::Small, &ExecConfig::serial());
    let many = StreamWorld::build_with(Scale::Small, &ExecConfig::with_threads(8));
    assert_eq!(one.report.summary, many.report.summary);
    assert_eq!(one.report.class_counts, many.report.class_counts);
    assert_eq!(
        one.report.monthly_os_requests,
        many.report.monthly_os_requests
    );
    assert_eq!(one.truth, many.truth);
    assert_eq!(one.tenants, many.tenants);
    assert_eq!(one.http_requests, many.http_requests);
    assert_eq!(one.shift, many.shift);
}

#[test]
#[ignore = "minutes-long: run with --ignored for the mid-scale proof"]
fn materialized_equals_fused_at_mid() {
    let exec = ExecConfig::with_threads(2);
    let fused = World::build_with(Scale::Mid, &exec);
    let materialized = World::build_materialized(Scale::Mid, &exec);
    assert_worlds_identical(&fused, &materialized);

    let stream = StreamWorld::build_with(Scale::Mid, &exec);
    assert_eq!(stream.report.summary, fused.report.summary);
    assert_eq!(stream.http_requests, fused.http_requests);
}
