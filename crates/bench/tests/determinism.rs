//! Thread-count-independence proofs for the parallel pipeline.
//!
//! The invariant the whole `yav-exec` design rests on: worker threads
//! are a *scheduling* resource, never a *semantic* input. Every stage
//! shards on structural boundaries (user blocks, campaign setups) and
//! merges into a canonical order, so the same seed must produce the
//! same bytes on 1, 2 or 8 threads.

use yav_analyzer::{analyze_parallel, AnalyzerReport, WeblogAnalyzer};
use yav_auction::MarketConfig;
use yav_bench::{Scale, World};
use yav_campaign::Campaign;
use yav_exec::ExecConfig;
use yav_weblog::{WeblogConfig, WeblogGenerator};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn weblog_identical_across_thread_counts() {
    let generator = WeblogGenerator::new(WeblogConfig::small());
    let market_config = MarketConfig::default();
    let mut logs = THREAD_COUNTS.iter().map(|&threads| {
        let generator = WeblogGenerator::new(WeblogConfig {
            exec: ExecConfig::with_threads(threads),
            ..WeblogConfig::small()
        });
        generator.collect_parallel(&market_config)
    });
    let base = logs.next().unwrap();
    assert!(base.requests.len() > 10_000, "small weblog too thin");
    assert!(generator.shard_count() > 1, "need multiple shards to test");
    for log in logs {
        assert_eq!(log.requests, base.requests);
        assert_eq!(log.truth, base.truth);
    }
}

#[test]
fn campaign_identical_across_thread_counts() {
    let universe = yav_weblog::PublisherUniverse::build(0xD474, 300, 120);
    let market_config = MarketConfig::default();
    // Small-scale A1: 40 impressions per setup, as `Scale::Small` runs it.
    let campaign = Campaign::a1().scaled(40);
    let mut reports = THREAD_COUNTS.iter().map(|&threads| {
        yav_campaign::execute_parallel(
            &market_config,
            &universe,
            &campaign,
            &ExecConfig::with_threads(threads),
        )
    });
    let base = reports.next().unwrap();
    assert_eq!(base.setups_completed, 144);
    assert_eq!(base.rows.len(), 144 * 40);
    for report in reports {
        assert_eq!(report.rows, base.rows);
        assert_eq!(report.spent, base.spent);
        assert_eq!(report.auctions_entered, base.auctions_entered);
        assert_eq!(report.setups_completed, base.setups_completed);
        assert_eq!(report.budget_exhausted, base.budget_exhausted);
    }
}

fn assert_reports_equal(a: &AnalyzerReport, b: &AnalyzerReport) {
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.malformed_nurls, b.malformed_nurls);
    assert_eq!(a.class_counts, b.class_counts);
    assert_eq!(a.monthly_os_requests, b.monthly_os_requests);
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.users_seen, b.users_seen);
    assert_eq!(a.pairs.figure2(), b.pairs.figure2());
    assert_eq!(a.pairs.figure3(), b.pairs.figure3());
}

#[test]
fn analyzer_identical_across_thread_counts_and_matches_serial() {
    // One canonical parallel weblog; the analyzer invariant is stronger
    // than the generator's: sharded analysis must equal the *serial*
    // streaming pass exactly, not just itself across thread counts.
    let generator = WeblogGenerator::new(WeblogConfig::small());
    let log = generator.collect_parallel(&MarketConfig::default());

    let mut serial_analyzer = WeblogAnalyzer::new();
    for req in &log.requests {
        serial_analyzer.ingest(req);
    }
    let serial = serial_analyzer.finish();
    assert!(serial.detections.len() > 500, "small trace too thin");

    for threads in THREAD_COUNTS {
        let par = analyze_parallel(&log.requests, &ExecConfig::with_threads(threads));
        assert_reports_equal(&par.report, &serial);
    }
}

#[test]
fn world_identical_across_thread_counts() {
    let base = World::build_with(Scale::Small, &ExecConfig::serial());
    let par = World::build_with(Scale::Small, &ExecConfig::with_threads(3));
    assert_eq!(par.http_requests, base.http_requests);
    assert_eq!(par.report.detections, base.report.detections);
    assert_eq!(par.report.total_requests, base.report.total_requests);
    assert_eq!(par.truth, base.truth);
    assert_eq!(par.a1.rows, base.a1.rows);
    assert_eq!(par.a2.rows, base.a2.rows);
    assert_eq!(par.a1.spent, base.a1.spent);
    assert_eq!(par.a2.spent, base.a2.spent);
    assert_eq!(par.feature_sample, base.feature_sample);
    assert_eq!(par.shift.coefficient, base.shift.coefficient);
}
