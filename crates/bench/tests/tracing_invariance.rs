//! Tracing is an observer, never an input.
//!
//! The yav-trace kill switch, ring capacity and thread count must all be
//! invisible to the pipeline's output: the same seed produces the same
//! world bytes with tracing off, on, on a tiny ring, or on more workers.
//! Alongside the invariance proof, this suite pins the exporter formats
//! (the Chrome trace JSON `figures --trace` emits, and folded stacks)
//! and the SLO health engine's report surfaces.

use std::sync::{Mutex, MutexGuard, OnceLock};
use yav_bench::{Scale, World};
use yav_exec::ExecConfig;

/// The trace collector and telemetry registry are process-global;
/// every test in this binary serialises on this lock and resets the
/// collector so concurrent tests cannot cross-pollute streams.
fn collector_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    yav_trace::set_enabled(false);
    yav_trace::clear();
    yav_trace::set_ring_capacity(yav_trace::DEFAULT_RING_CAPACITY);
    guard
}

fn assert_worlds_equal(a: &World, b: &World, label: &str) {
    assert_eq!(a.http_requests, b.http_requests, "{label}");
    assert_eq!(a.report.detections, b.report.detections, "{label}");
    assert_eq!(
        a.report.malformed_nurls, b.report.malformed_nurls,
        "{label}"
    );
    assert_eq!(a.report.class_counts, b.report.class_counts, "{label}");
    assert_eq!(a.report.total_requests, b.report.total_requests, "{label}");
    assert_eq!(a.report.users_seen, b.report.users_seen, "{label}");
    assert_eq!(
        a.report.pairs.figure2(),
        b.report.pairs.figure2(),
        "{label}"
    );
    assert_eq!(a.truth, b.truth, "{label}");
    assert_eq!(a.a1.rows, b.a1.rows, "{label}");
    assert_eq!(a.a2.rows, b.a2.rows, "{label}");
    assert_eq!(a.a1.spent, b.a1.spent, "{label}");
    assert_eq!(a.a2.spent, b.a2.spent, "{label}");
    assert_eq!(a.feature_sample, b.feature_sample, "{label}");
    assert_eq!(a.shift.coefficient, b.shift.coefficient, "{label}");
}

#[test]
fn world_identical_with_tracing_off_on_and_across_rings_and_threads() {
    let _g = collector_lock();
    let base = World::build_with(Scale::Small, &ExecConfig::serial());

    // Tracing on, default ring.
    yav_trace::set_enabled(true);
    let traced = World::build_with(Scale::Small, &ExecConfig::serial());
    yav_trace::set_enabled(false);
    let trace = yav_trace::drain();
    assert!(!trace.is_empty(), "enabled tracing must record spans");
    assert_worlds_equal(&base, &traced, "tracing on");

    // Tracing on, a ring small enough to wrap constantly, more workers.
    yav_trace::set_ring_capacity(128);
    yav_trace::set_enabled(true);
    let wrapped = World::build_with(Scale::Small, &ExecConfig::with_threads(3));
    yav_trace::set_enabled(false);
    let trace = yav_trace::drain();
    assert!(
        trace.dropped() > 0,
        "128-slot ring must wrap on a world build"
    );
    assert_worlds_equal(&base, &wrapped, "tracing on, tiny ring, 3 threads");
}

/// Minimal schema check over the Chrome trace-event JSON `figures
/// --trace` writes: parses as JSON, events carry the fields Perfetto
/// requires per phase, and every Begin has a matching End per thread.
#[test]
fn chrome_trace_export_matches_event_schema() {
    let _g = collector_lock();
    yav_trace::set_enabled(true);
    let generator = yav_weblog::WeblogGenerator::new(yav_weblog::WeblogConfig::tiny());
    let log = generator.collect_parallel(&yav_auction::MarketConfig::default());
    let _ = yav_analyzer::analyze_parallel(&log.requests, &ExecConfig::with_threads(2));
    yav_trace::set_enabled(false);
    let trace = yav_trace::drain();
    assert!(!trace.is_empty());

    let json = yav_trace::chrome_trace_json(&trace);
    let doc: serde_json::Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut depth_per_tid = std::collections::BTreeMap::<i64, i64>::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .expect("ph");
        let tid = ev
            .get("tid")
            .and_then(serde_json::Value::as_i64)
            .expect("tid");
        assert!(ev.get("pid").and_then(serde_json::Value::as_i64).is_some());
        let name = ev.get("name").expect("every event is named");
        match ph {
            "M" => assert_eq!(name.as_str(), Some("thread_name")),
            "B" | "E" | "i" => {
                assert!(
                    ev.get("ts").and_then(serde_json::Value::as_i64).is_some(),
                    "timed events carry a logical timestamp"
                );
                let d = depth_per_tid.entry(tid).or_insert(0);
                match ph {
                    "B" => *d += 1,
                    "E" => {
                        *d -= 1;
                        assert!(*d >= 0, "E without matching B on tid {tid}");
                    }
                    _ => {}
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, depth) in depth_per_tid {
        assert_eq!(depth, 0, "unclosed spans on tid {tid}");
    }

    // The folded-stack exporter agrees on the record count: one logical
    // tick per record, each attributed to exactly one stack.
    let folded = yav_trace::folded_stacks(&trace);
    let weight: u64 = folded
        .lines()
        .map(|l| {
            l.rsplit(' ')
                .next()
                .unwrap()
                .parse::<u64>()
                .expect("weight")
        })
        .sum();
    assert_eq!(weight, trace.len() as u64);
}

/// The health engine must surface ingest p99 latency and drop-rate
/// flags in both of its export formats.
#[test]
fn health_report_surfaces_ingest_latency_and_drop_flags() {
    let _g = collector_lock();
    use yav_trace::{HealthEngine, SloConfig, Watch};

    let mut engine = HealthEngine::new(SloConfig {
        // One-tick window: the report below reflects exactly the batch
        // this test feeds, not telemetry history from sibling tests.
        window: 1,
        // Thresholds tight enough that any real batch breaches them:
        // the test pins that breaches *surface*, not where the bar sits.
        p99_limit_us: 1e-6,
        drop_rate_limit: 1e-6,
        anomaly_sigma: 3.0,
        watches: vec![Watch {
            area: "ingest",
            latency_hist: "ingest.observe.us",
            events_ctr: "core.monitor.events",
            drops_ctr: Some("core.monitor.nurl.parse_error"),
        }],
    });
    engine.tick(); // absorb whatever cumulative history other tests left

    let t = yav_types::SimTime::from_ymd_hm(2015, 10, 1, 12, 0);
    let mut yav = yav_core::YourAdValue::new(None);
    let mut batch = Vec::new();
    for i in 0..64u64 {
        // Well-formed cleartext notifications (events) interleaved with
        // malformed payloads on a screened host (parse-error drops).
        let url = if i % 4 == 0 {
            "http://cpp.imp.mpx.mopub.com/imp?currency=USD".to_owned()
        } else {
            let fields = yav_nurl::NurlFields::minimal(
                yav_types::Adx::MoPub,
                yav_types::DspId(1),
                yav_nurl::PricePayload::Cleartext(yav_types::Cpm::from_f64(
                    0.10 + i as f64 / 100.0,
                )),
                yav_types::ImpressionId(i),
                yav_types::AuctionId(i + 1_000),
            );
            yav_nurl::emit(&fields).to_string()
        };
        batch.push(yav_weblog::HttpRequest::bare(t, &url));
    }
    let events = yav.observe_batch(&batch);
    assert!(!events.is_empty());

    let report = engine.tick();
    let ingest = &report.areas[0];
    assert!(
        ingest.p99_us.is_finite() && ingest.p99_us > 0.0,
        "batch must record ingest latency, got {}",
        ingest.p99_us
    );
    assert!(
        ingest.drop_rate > 0.1,
        "malformed nURLs must count as drops"
    );
    let kinds: Vec<&str> = ingest.flags.iter().map(|f| f.kind()).collect();
    assert!(kinds.contains(&"latency_slo"), "flags: {kinds:?}");
    assert!(kinds.contains(&"drop_slo"), "flags: {kinds:?}");

    let json = report.to_json();
    let doc: serde_json::Value = serde_json::from_str(&json).expect("health JSON parses");
    let area = &doc
        .get("areas")
        .and_then(serde_json::Value::as_array)
        .expect("areas")[0];
    assert_eq!(
        area.get("area").and_then(serde_json::Value::as_str),
        Some("ingest")
    );
    assert!(
        area.get("p99_us")
            .and_then(serde_json::Value::as_f64)
            .expect("p99 in JSON")
            > 0.0
    );
    assert!(
        area.get("drop_rate")
            .and_then(serde_json::Value::as_f64)
            .expect("drop rate in JSON")
            > 0.0
    );
    let flag_kinds: Vec<&str> = area
        .get("flags")
        .and_then(serde_json::Value::as_array)
        .expect("flags array")
        .iter()
        .map(|f| {
            f.get("kind")
                .and_then(serde_json::Value::as_str)
                .expect("flag kind")
        })
        .collect();
    assert!(flag_kinds.contains(&"latency_slo"));
    assert!(flag_kinds.contains(&"drop_slo"));

    let prom = report.prometheus_text();
    assert!(
        prom.contains("yav_health_p99_us{area=\"ingest\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("yav_health_drop_rate{area=\"ingest\"}"),
        "{prom}"
    );
    // Both breaches (and no anomalies yet — two ticks of history) count
    // into the flag gauge, and the area reads critical overall.
    assert!(
        prom.contains("yav_health_flags{area=\"ingest\"} 2"),
        "{prom}"
    );
    assert!(
        prom.contains("yav_health_status{area=\"ingest\"} 2"),
        "{prom}"
    );
}
