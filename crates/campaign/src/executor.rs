//! Campaign execution against the simulated market.
//!
//! For each setup the executor synthesises auction traffic matching the
//! filter tuple (the open market the DSP would bid on), submits the
//! probe's capped bid, and books every win into the performance report.
//! Wins carry the *true* charge price — the buyer side of the protocol
//! always learns it, which is precisely why the paper's probing
//! campaigns can collect encrypted-price ground truth.

use crate::setups::Setup;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yav_auction::{AdRequest, Market, MarketConfig, ProbeBid};
use yav_exec::ExecConfig;
use yav_types::time::CampaignShift;
use yav_types::{
    AdSlotSize, Adx, CampaignId, City, Cpm, DeviceType, DspId, IabCategory, InteractionType,
    MicroUsd, Os, PriceVisibility, PublisherId, SimTime, UserId,
};
use yav_weblog::PublisherUniverse;

/// A probing campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign identity (booked into won impressions).
    pub id: CampaignId,
    /// Human-readable name ("A1", "A2").
    pub name: String,
    /// Exchanges to sweep.
    pub adxs: Vec<Adx>,
    /// Publisher categories to target.
    pub iabs: Vec<IabCategory>,
    /// First day of the delivery window.
    pub window_start: SimTime,
    /// Window length in days.
    pub window_days: u32,
    /// Impressions to buy per setup (§5.2 suggests ≥185).
    pub impressions_per_setup: u32,
    /// Bid cap handed to the DSP (budget safeguard, §5.3).
    pub max_bid: Cpm,
    /// Total budget; execution stops when it is exhausted.
    pub budget: MicroUsd,
    /// The cooperating DSP.
    pub dsp: DspId,
    /// Maximum distinct publishers the DSP buys from (real campaigns
    /// clear on a limited inventory list; Table 3 reports ~0.2-0.3 k).
    pub publisher_cap: usize,
    /// Traffic-synthesis seed.
    pub seed: u64,
}

impl Campaign {
    /// Campaign **A1**: the four encrypting exchanges, 13 days in May
    /// 2016 (Table 3), 16 IAB categories.
    pub fn a1() -> Campaign {
        Campaign {
            id: CampaignId(1),
            name: "A1".into(),
            adxs: Adx::ENCRYPTED_TARGETS.to_vec(),
            iabs: IabCategory::ALL[..16].to_vec(),
            window_start: SimTime::from_ymd_hm(2016, 5, 9, 0, 0),
            window_days: 13,
            impressions_per_setup: 4394, // ≈ 632 667 / 144 (Table 3)
            max_bid: Cpm::from_whole(30),
            budget: MicroUsd::from_dollars(2500),
            dsp: DspId(0),
            publisher_cap: 220,
            seed: 0xA1,
        }
    }

    /// Campaign **A2**: MoPub only, 8 days in June 2016, 7 IAB
    /// categories (Table 3).
    pub fn a2() -> Campaign {
        Campaign {
            id: CampaignId(2),
            name: "A2".into(),
            adxs: vec![Adx::MoPub],
            iabs: IabCategory::ALL[..7].to_vec(),
            window_start: SimTime::from_ymd_hm(2016, 6, 13, 0, 0),
            window_days: 8,
            impressions_per_setup: 2215, // ≈ 318 964 / 144 (Table 3)
            max_bid: Cpm::from_whole(30),
            budget: MicroUsd::from_dollars(1200),
            dsp: DspId(0),
            publisher_cap: 320,
            seed: 0xA2,
        }
    }

    /// A scaled copy for tests and quick runs.
    pub fn scaled(&self, impressions_per_setup: u32) -> Campaign {
        Campaign {
            impressions_per_setup,
            ..self.clone()
        }
    }
}

/// One bought impression, as the DSP's performance report records it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeImpression {
    /// The setup that bought it.
    pub setup_id: u32,
    /// Delivery time.
    pub time: SimTime,
    /// Audience city.
    pub city: City,
    /// Device OS.
    pub os: Os,
    /// Device class.
    pub device: DeviceType,
    /// App vs web inventory.
    pub interaction: InteractionType,
    /// Creative format.
    pub format: AdSlotSize,
    /// Exchange.
    pub adx: Adx,
    /// Publisher IAB category.
    pub iab: IabCategory,
    /// Publisher name.
    pub publisher: String,
    /// **True** charge price, from the buyer-side report.
    pub charge: Cpm,
    /// How the browser-side notification reported the price.
    pub visibility: PriceVisibility,
}

/// The result of one campaign execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Every bought impression.
    pub rows: Vec<ProbeImpression>,
    /// Total spend.
    pub spent: MicroUsd,
    /// Setups completed in full before any budget stop.
    pub setups_completed: usize,
    /// True if the budget ran out mid-sweep.
    pub budget_exhausted: bool,
    /// Auctions entered (wins + losses) — the DSP's fill diagnostics.
    pub auctions_entered: u64,
}

impl CampaignReport {
    /// Distinct publishers reached (Table 3 reports ~0.2 k / ~0.3 k).
    pub fn distinct_publishers(&self) -> usize {
        let set: std::collections::BTreeSet<&str> =
            self.rows.iter().map(|r| r.publisher.as_str()).collect();
        set.len()
    }

    /// Distinct IAB categories reached.
    pub fn distinct_iabs(&self) -> usize {
        let set: std::collections::BTreeSet<IabCategory> =
            self.rows.iter().map(|r| r.iab).collect();
        set.len()
    }

    /// Charge prices as floating CPM (for statistics).
    pub fn prices_cpm(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.charge.as_f64()).collect()
    }
}

/// Executes a campaign: sweeps all 144 setups over the market.
pub fn execute(
    market: &mut Market,
    universe: &PublisherUniverse,
    campaign: &Campaign,
) -> CampaignReport {
    let _span = yav_telemetry::span!("campaign.executor.execute");
    let setups_counter = yav_telemetry::counter("campaign.executor.setups_completed");
    let auctions_counter = yav_telemetry::counter("campaign.executor.auctions_entered");
    let bought_counter = yav_telemetry::counter("campaign.executor.impressions_bought");
    let setups = crate::setups::table5(&campaign.adxs);
    let mut rng = StdRng::seed_from_u64(campaign.seed ^ 0xCA4B_0000_0000_0007);
    let mut report = CampaignReport {
        name: campaign.name.clone(),
        rows: Vec::new(),
        spent: MicroUsd::ZERO,
        setups_completed: 0,
        budget_exhausted: false,
        auctions_entered: 0,
    };

    let eligible = eligible_publishers(universe, campaign);

    'sweep: for setup in &setups {
        let mut bought = 0u32;
        let mut attempts = 0u32;
        // Attempt cap: a probe with a sane cap wins nearly always, so the
        // cap only guards against pathological configurations.
        let max_attempts = campaign.impressions_per_setup.saturating_mul(4).max(16);
        while bought < campaign.impressions_per_setup && attempts < max_attempts {
            attempts += 1;
            report.auctions_entered += 1;
            auctions_counter.inc();
            let req = synthesize_request(&mut rng, setup, campaign, &eligible);
            let probe = ProbeBid {
                dsp: campaign.dsp,
                max_bid: campaign.max_bid,
                campaign: campaign.id,
            };
            let (_result, win) = market.run_auction_with_probe(&req, &probe);
            let Some(win) = win else { continue };
            bought += 1;
            bought_counter.inc();
            report.spent = report.spent.saturating_add(win.charge.per_impression());
            report.rows.push(ProbeImpression {
                setup_id: setup.id,
                time: req.time,
                city: setup.city,
                os: setup.os,
                device: setup.device,
                interaction: setup.interaction,
                format: setup.format,
                adx: setup.adx,
                iab: req.iab,
                publisher: req.publisher_name.clone(),
                charge: win.charge,
                visibility: win.visibility,
            });
            if report.spent > campaign.budget {
                report.budget_exhausted = true;
                break 'sweep;
            }
        }
        if bought == campaign.impressions_per_setup {
            report.setups_completed += 1;
            setups_counter.inc();
        }
    }
    report
}

/// Audience publishers: category-eligible inventory, capped to the
/// campaign's publisher list (most popular first — that is where a DSP
/// finds volume).
fn eligible_publishers<'u>(
    universe: &'u PublisherUniverse,
    campaign: &Campaign,
) -> Vec<&'u yav_weblog::Publisher> {
    let mut eligible: Vec<&yav_weblog::Publisher> = universe
        .all()
        .iter()
        .filter(|p| campaign.iabs.contains(&p.iab))
        .collect();
    eligible.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    eligible.truncate(campaign.publisher_cap.max(1));
    assert!(
        !eligible.is_empty(),
        "universe has no publishers in the target categories"
    );
    eligible
}

/// One setup's worth of buying, executed without budget knowledge.
/// The merge step replays the serial budget walk over these.
struct SetupRun {
    rows: Vec<ProbeImpression>,
    /// Auctions entered within this setup up to and including the one
    /// that bought `rows[i]` (for mid-setup budget stops).
    attempts_at: Vec<u64>,
    /// Auctions entered for the whole setup.
    attempts_total: u64,
    /// Whether the setup bought its full allotment.
    completed: bool,
}

/// Buys one setup's impressions against a dedicated shard market.
fn run_setup(
    market: &mut Market,
    rng: &mut StdRng,
    setup: &Setup,
    campaign: &Campaign,
    eligible: &[&yav_weblog::Publisher],
) -> SetupRun {
    let mut run = SetupRun {
        rows: Vec::with_capacity(campaign.impressions_per_setup as usize),
        attempts_at: Vec::with_capacity(campaign.impressions_per_setup as usize),
        attempts_total: 0,
        completed: false,
    };
    let mut bought = 0u32;
    let mut attempts = 0u32;
    let max_attempts = campaign.impressions_per_setup.saturating_mul(4).max(16);
    while bought < campaign.impressions_per_setup && attempts < max_attempts {
        attempts += 1;
        run.attempts_total += 1;
        let req = synthesize_request(rng, setup, campaign, eligible);
        let probe = ProbeBid {
            dsp: campaign.dsp,
            max_bid: campaign.max_bid,
            campaign: campaign.id,
        };
        let (_result, win) = market.run_auction_with_probe(&req, &probe);
        let Some(win) = win else { continue };
        bought += 1;
        run.attempts_at.push(run.attempts_total);
        run.rows.push(ProbeImpression {
            setup_id: setup.id,
            time: req.time,
            city: setup.city,
            os: setup.os,
            device: setup.device,
            interaction: setup.interaction,
            format: setup.format,
            adx: setup.adx,
            iab: req.iab,
            publisher: req.publisher_name.clone(),
            charge: win.charge,
            visibility: win.visibility,
        });
    }
    run.completed = bought == campaign.impressions_per_setup;
    run
}

/// Market-shard id for one campaign setup. Weblog user shards occupy the
/// low shard numbers, so campaign markets live in a disjoint namespace.
fn campaign_shard(campaign: &Campaign, setup_id: u32) -> u64 {
    0x10_0000 + campaign.id.0 as u64 * 0x1000 + setup_id as u64
}

/// Executes a campaign on `exec`'s worker pool, one logical shard per
/// Table-5 setup (so the result never depends on the worker count).
///
/// Each setup buys against its own deterministic shard market — see
/// [`Market::new_shard`] — which makes the realised prices a different
/// (equally valid) draw than the serial [`execute`] stream. Budget-stop
/// semantics are preserved exactly: workers buy without budget
/// knowledge, and the merge replays the serial sweep — accumulating
/// spend in setup order and truncating at the first row that pushes
/// spend past the budget, discarding everything a stopped serial sweep
/// would never have executed.
pub fn execute_parallel(
    market_config: &MarketConfig,
    universe: &PublisherUniverse,
    campaign: &Campaign,
    exec: &ExecConfig,
) -> CampaignReport {
    let _span = yav_telemetry::span!("exec.campaign.execute_parallel");
    let setups_counter = yav_telemetry::counter("campaign.executor.setups_completed");
    let auctions_counter = yav_telemetry::counter("campaign.executor.auctions_entered");
    let bought_counter = yav_telemetry::counter("campaign.executor.impressions_bought");
    let setups = crate::setups::table5(&campaign.adxs);
    let eligible = eligible_publishers(universe, campaign);
    yav_telemetry::gauge("exec.campaign.shards").set(setups.len() as f64);

    let template = yav_auction::MarketTemplate::new(market_config.clone());
    let runs = yav_exec::par_map_indexed(exec, setups.len(), |i| {
        let setup = &setups[i];
        let mut market = template.shard(campaign_shard(campaign, setup.id));
        let mut rng = StdRng::seed_from_u64(yav_exec::derive_seed(
            campaign.seed ^ 0xCA4B_0000_0000_0007,
            setup.id as u64 + 1,
        ));
        run_setup(&mut market, &mut rng, setup, campaign, &eligible)
    });

    // Budget replay: the serial sweep's walk over the per-setup streams.
    let mut report = CampaignReport {
        name: campaign.name.clone(),
        rows: Vec::new(),
        spent: MicroUsd::ZERO,
        setups_completed: 0,
        budget_exhausted: false,
        auctions_entered: 0,
    };
    'sweep: for run in runs {
        let SetupRun {
            rows,
            attempts_at,
            attempts_total,
            completed,
        } = run;
        for (row, &attempts) in rows.into_iter().zip(&attempts_at) {
            report.spent = report.spent.saturating_add(row.charge.per_impression());
            report.rows.push(row);
            bought_counter.inc();
            if report.spent > campaign.budget {
                report.budget_exhausted = true;
                report.auctions_entered += attempts;
                auctions_counter.add(attempts);
                break 'sweep;
            }
        }
        report.auctions_entered += attempts_total;
        auctions_counter.add(attempts_total);
        if completed {
            report.setups_completed += 1;
            setups_counter.inc();
        }
    }
    report
}

/// Synthesises one open-market ad request matching a setup's filters.
fn synthesize_request(
    rng: &mut StdRng,
    setup: &Setup,
    campaign: &Campaign,
    eligible: &[&yav_weblog::Publisher],
) -> AdRequest {
    // Delivery time: a day in the window with the right day-type, an hour
    // inside the shift.
    let time = loop {
        let day = rng.gen_range(0..campaign.window_days as i64);
        let midnight = campaign.window_start.plus_days(day);
        if !setup.day_type.matches(midnight.is_weekend()) {
            continue;
        }
        let hour = loop {
            let h = rng.gen_range(0..24u32);
            if CampaignShift::from_hour(h) == setup.shift {
                break h;
            }
        };
        break midnight.plus_minutes(hour as i64 * 60 + rng.gen_range(0..60i64));
    };

    // The audience member: an open-market user (outside the panel's id
    // space), so the DMP draws fresh value factors.
    let user = UserId(1_000_000 + rng.gen_range(0..200_000u32));

    // Publisher: any eligible one matching the channel.
    let publisher = loop {
        let p = eligible[rng.gen_range(0..eligible.len())];
        if p.is_app == (setup.interaction == InteractionType::MobileApp) {
            break p;
        }
    };

    AdRequest {
        time,
        user,
        city: setup.city,
        os: setup.os,
        device: setup.device,
        interaction: setup.interaction,
        publisher: PublisherId(publisher.id.0),
        publisher_name: publisher.name.clone(),
        iab: publisher.iab,
        slot: setup.format,
        adx: setup.adx,
        interest_match: rng.gen_range(0.0..0.3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::MarketConfig;

    fn small_market() -> (Market, PublisherUniverse) {
        (
            Market::new(MarketConfig::default()),
            PublisherUniverse::build(0xD474, 300, 120),
        )
    }

    #[test]
    fn a1_buys_encrypted_ground_truth() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a1().scaled(4));
        assert_eq!(report.setups_completed, 144);
        assert_eq!(report.rows.len(), 144 * 4);
        assert!(!report.budget_exhausted);
        // Every A1 exchange encrypts: browser-side the prices are opaque,
        // yet the report knows every charge.
        for row in &report.rows {
            assert_eq!(row.visibility, PriceVisibility::Encrypted);
            assert!(row.charge.is_positive());
            assert!(row.charge <= Campaign::a1().max_bid);
        }
        assert!(report.spent > MicroUsd::ZERO);
    }

    #[test]
    fn a2_is_cleartext_mopub() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a2().scaled(4));
        for row in &report.rows {
            assert_eq!(row.adx, Adx::MoPub);
            assert_eq!(row.visibility, PriceVisibility::Cleartext);
        }
        assert!(report.distinct_iabs() <= 7);
        assert!(report.distinct_publishers() > 10);
    }

    #[test]
    fn encrypted_campaign_prices_run_higher() {
        // The §6.1 headline must be visible in the raw campaign data.
        let (mut market, universe) = small_market();
        let a1 = execute(&mut market, &universe, &Campaign::a1().scaled(30));
        let a2 = execute(&mut market, &universe, &Campaign::a2().scaled(30));
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let ratio = median(a1.prices_cpm()) / median(a2.prices_cpm());
        assert!(
            (1.25..=2.4).contains(&ratio),
            "A1/A2 median ratio {ratio:.2}"
        );
    }

    #[test]
    fn setups_respect_filters_in_rows() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a2().scaled(3));
        let setups = crate::setups::table5(&[Adx::MoPub]);
        for row in &report.rows {
            let s = &setups[row.setup_id as usize];
            assert_eq!(row.city, s.city);
            assert_eq!(row.os, s.os);
            assert_eq!(row.device, s.device);
            assert_eq!(row.format, s.format);
            assert_eq!(
                CampaignShift::from_hour(row.time.hour()),
                s.shift,
                "delivery inside the shift"
            );
            assert!(s.day_type.matches(row.time.is_weekend()));
        }
    }

    #[test]
    fn budget_stop_works() {
        let (mut market, universe) = small_market();
        let mut tiny = Campaign::a1().scaled(50);
        tiny.budget = MicroUsd(3_000); // three tenths of a cent
        let report = execute(&mut market, &universe, &tiny);
        assert!(report.budget_exhausted);
        assert!(report.rows.len() < 144 * 50);
        assert!(report.spent >= tiny.budget);
    }

    #[test]
    fn deterministic() {
        let (mut m1, u1) = small_market();
        let (mut m2, u2) = small_market();
        let a = execute(&mut m1, &u1, &Campaign::a2().scaled(3));
        let b = execute(&mut m2, &u2, &Campaign::a2().scaled(3));
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.spent, b.spent);
    }

    #[test]
    fn parallel_is_thread_count_invariant() {
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let campaign = Campaign::a1().scaled(4);
        let config = MarketConfig::default();
        let base = execute_parallel(&config, &universe, &campaign, &ExecConfig::serial());
        assert_eq!(base.setups_completed, 144);
        assert_eq!(base.rows.len(), 144 * 4);
        assert!(!base.budget_exhausted);
        for threads in [2usize, 8] {
            let par = execute_parallel(
                &config,
                &universe,
                &campaign,
                &ExecConfig::with_threads(threads),
            );
            assert_eq!(par.rows, base.rows, "threads={threads}");
            assert_eq!(par.spent, base.spent);
            assert_eq!(par.setups_completed, base.setups_completed);
            assert_eq!(par.auctions_entered, base.auctions_entered);
            assert_eq!(par.budget_exhausted, base.budget_exhausted);
        }
    }

    #[test]
    fn parallel_rows_respect_setup_filters() {
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let report = execute_parallel(
            &MarketConfig::default(),
            &universe,
            &Campaign::a2().scaled(3),
            &ExecConfig::with_threads(4),
        );
        let setups = crate::setups::table5(&[Adx::MoPub]);
        // Setup-major order, like the serial sweep.
        let mut last_setup = 0u32;
        for row in &report.rows {
            assert!(row.setup_id >= last_setup);
            last_setup = row.setup_id;
            let s = &setups[row.setup_id as usize];
            assert_eq!(row.city, s.city);
            assert_eq!(row.adx, Adx::MoPub);
            assert_eq!(row.visibility, PriceVisibility::Cleartext);
            assert!(s.day_type.matches(row.time.is_weekend()));
        }
    }

    #[test]
    fn parallel_budget_stop_matches_serial_semantics() {
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let mut tiny = Campaign::a1().scaled(50);
        tiny.budget = MicroUsd(3_000); // three tenths of a cent
        let config = MarketConfig::default();
        let serial = execute_parallel(&config, &universe, &tiny, &ExecConfig::serial());
        let par = execute_parallel(&config, &universe, &tiny, &ExecConfig::with_threads(8));
        for report in [&serial, &par] {
            assert!(report.budget_exhausted);
            assert!(report.rows.len() < 144 * 50);
            assert!(report.spent >= tiny.budget);
            // The last row is the one that broke the budget.
            let spent_before: MicroUsd = report.rows[..report.rows.len() - 1]
                .iter()
                .fold(MicroUsd::ZERO, |acc, r| {
                    acc.saturating_add(r.charge.per_impression())
                });
            assert!(spent_before <= tiny.budget);
        }
        assert_eq!(serial.rows, par.rows);
        assert_eq!(serial.setups_completed, par.setups_completed);
        assert_eq!(serial.auctions_entered, par.auctions_entered);
    }
}
