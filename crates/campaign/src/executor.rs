//! Campaign execution against the simulated market.
//!
//! For each setup the executor synthesises auction traffic matching the
//! filter tuple (the open market the DSP would bid on), submits the
//! probe's capped bid, and books every win into the performance report.
//! Wins carry the *true* charge price — the buyer side of the protocol
//! always learns it, which is precisely why the paper's probing
//! campaigns can collect encrypted-price ground truth.

use crate::setups::Setup;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yav_auction::{AdRequest, Market, ProbeBid};
use yav_types::time::CampaignShift;
use yav_types::{
    AdSlotSize, Adx, CampaignId, City, Cpm, DeviceType, DspId, IabCategory, InteractionType,
    MicroUsd, Os, PriceVisibility, PublisherId, SimTime, UserId,
};
use yav_weblog::PublisherUniverse;

/// A probing campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign identity (booked into won impressions).
    pub id: CampaignId,
    /// Human-readable name ("A1", "A2").
    pub name: String,
    /// Exchanges to sweep.
    pub adxs: Vec<Adx>,
    /// Publisher categories to target.
    pub iabs: Vec<IabCategory>,
    /// First day of the delivery window.
    pub window_start: SimTime,
    /// Window length in days.
    pub window_days: u32,
    /// Impressions to buy per setup (§5.2 suggests ≥185).
    pub impressions_per_setup: u32,
    /// Bid cap handed to the DSP (budget safeguard, §5.3).
    pub max_bid: Cpm,
    /// Total budget; execution stops when it is exhausted.
    pub budget: MicroUsd,
    /// The cooperating DSP.
    pub dsp: DspId,
    /// Maximum distinct publishers the DSP buys from (real campaigns
    /// clear on a limited inventory list; Table 3 reports ~0.2-0.3 k).
    pub publisher_cap: usize,
    /// Traffic-synthesis seed.
    pub seed: u64,
}

impl Campaign {
    /// Campaign **A1**: the four encrypting exchanges, 13 days in May
    /// 2016 (Table 3), 16 IAB categories.
    pub fn a1() -> Campaign {
        Campaign {
            id: CampaignId(1),
            name: "A1".into(),
            adxs: Adx::ENCRYPTED_TARGETS.to_vec(),
            iabs: IabCategory::ALL[..16].to_vec(),
            window_start: SimTime::from_ymd_hm(2016, 5, 9, 0, 0),
            window_days: 13,
            impressions_per_setup: 4394, // ≈ 632 667 / 144 (Table 3)
            max_bid: Cpm::from_whole(30),
            budget: MicroUsd::from_dollars(2500),
            dsp: DspId(0),
            publisher_cap: 220,
            seed: 0xA1,
        }
    }

    /// Campaign **A2**: MoPub only, 8 days in June 2016, 7 IAB
    /// categories (Table 3).
    pub fn a2() -> Campaign {
        Campaign {
            id: CampaignId(2),
            name: "A2".into(),
            adxs: vec![Adx::MoPub],
            iabs: IabCategory::ALL[..7].to_vec(),
            window_start: SimTime::from_ymd_hm(2016, 6, 13, 0, 0),
            window_days: 8,
            impressions_per_setup: 2215, // ≈ 318 964 / 144 (Table 3)
            max_bid: Cpm::from_whole(30),
            budget: MicroUsd::from_dollars(1200),
            dsp: DspId(0),
            publisher_cap: 320,
            seed: 0xA2,
        }
    }

    /// A scaled copy for tests and quick runs.
    pub fn scaled(&self, impressions_per_setup: u32) -> Campaign {
        Campaign {
            impressions_per_setup,
            ..self.clone()
        }
    }
}

/// One bought impression, as the DSP's performance report records it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeImpression {
    /// The setup that bought it.
    pub setup_id: u32,
    /// Delivery time.
    pub time: SimTime,
    /// Audience city.
    pub city: City,
    /// Device OS.
    pub os: Os,
    /// Device class.
    pub device: DeviceType,
    /// App vs web inventory.
    pub interaction: InteractionType,
    /// Creative format.
    pub format: AdSlotSize,
    /// Exchange.
    pub adx: Adx,
    /// Publisher IAB category.
    pub iab: IabCategory,
    /// Publisher name.
    pub publisher: String,
    /// **True** charge price, from the buyer-side report.
    pub charge: Cpm,
    /// How the browser-side notification reported the price.
    pub visibility: PriceVisibility,
}

/// The result of one campaign execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Every bought impression.
    pub rows: Vec<ProbeImpression>,
    /// Total spend.
    pub spent: MicroUsd,
    /// Setups completed in full before any budget stop.
    pub setups_completed: usize,
    /// True if the budget ran out mid-sweep.
    pub budget_exhausted: bool,
    /// Auctions entered (wins + losses) — the DSP's fill diagnostics.
    pub auctions_entered: u64,
}

impl CampaignReport {
    /// Distinct publishers reached (Table 3 reports ~0.2 k / ~0.3 k).
    pub fn distinct_publishers(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.rows.iter().map(|r| r.publisher.as_str()).collect();
        set.len()
    }

    /// Distinct IAB categories reached.
    pub fn distinct_iabs(&self) -> usize {
        let set: std::collections::HashSet<IabCategory> = self.rows.iter().map(|r| r.iab).collect();
        set.len()
    }

    /// Charge prices as floating CPM (for statistics).
    pub fn prices_cpm(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.charge.as_f64()).collect()
    }
}

/// Executes a campaign: sweeps all 144 setups over the market.
pub fn execute(
    market: &mut Market,
    universe: &PublisherUniverse,
    campaign: &Campaign,
) -> CampaignReport {
    let _span = yav_telemetry::span!("campaign.executor.execute");
    let setups_counter = yav_telemetry::counter("campaign.executor.setups_completed");
    let auctions_counter = yav_telemetry::counter("campaign.executor.auctions_entered");
    let bought_counter = yav_telemetry::counter("campaign.executor.impressions_bought");
    let setups = crate::setups::table5(&campaign.adxs);
    let mut rng = StdRng::seed_from_u64(campaign.seed ^ 0xCA4B_0000_0000_0007);
    let mut report = CampaignReport {
        name: campaign.name.clone(),
        rows: Vec::new(),
        spent: MicroUsd::ZERO,
        setups_completed: 0,
        budget_exhausted: false,
        auctions_entered: 0,
    };

    // Audience publishers: category-eligible inventory, capped to the
    // campaign's publisher list (most popular first — that is where a
    // DSP finds volume).
    let mut eligible: Vec<&yav_weblog::Publisher> = universe
        .all()
        .iter()
        .filter(|p| campaign.iabs.contains(&p.iab))
        .collect();
    eligible.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    eligible.truncate(campaign.publisher_cap.max(1));
    assert!(
        !eligible.is_empty(),
        "universe has no publishers in the target categories"
    );

    'sweep: for setup in &setups {
        let mut bought = 0u32;
        let mut attempts = 0u32;
        // Attempt cap: a probe with a sane cap wins nearly always, so the
        // cap only guards against pathological configurations.
        let max_attempts = campaign.impressions_per_setup.saturating_mul(4).max(16);
        while bought < campaign.impressions_per_setup && attempts < max_attempts {
            attempts += 1;
            report.auctions_entered += 1;
            auctions_counter.inc();
            let req = synthesize_request(&mut rng, setup, campaign, &eligible);
            let probe = ProbeBid {
                dsp: campaign.dsp,
                max_bid: campaign.max_bid,
                campaign: campaign.id,
            };
            let (_result, win) = market.run_auction_with_probe(&req, &probe);
            let Some(win) = win else { continue };
            bought += 1;
            bought_counter.inc();
            report.spent = report.spent.saturating_add(win.charge.per_impression());
            report.rows.push(ProbeImpression {
                setup_id: setup.id,
                time: req.time,
                city: setup.city,
                os: setup.os,
                device: setup.device,
                interaction: setup.interaction,
                format: setup.format,
                adx: setup.adx,
                iab: req.iab,
                publisher: req.publisher_name.clone(),
                charge: win.charge,
                visibility: win.visibility,
            });
            if report.spent > campaign.budget {
                report.budget_exhausted = true;
                break 'sweep;
            }
        }
        if bought == campaign.impressions_per_setup {
            report.setups_completed += 1;
            setups_counter.inc();
        }
    }
    report
}

/// Synthesises one open-market ad request matching a setup's filters.
fn synthesize_request(
    rng: &mut StdRng,
    setup: &Setup,
    campaign: &Campaign,
    eligible: &[&yav_weblog::Publisher],
) -> AdRequest {
    // Delivery time: a day in the window with the right day-type, an hour
    // inside the shift.
    let time = loop {
        let day = rng.gen_range(0..campaign.window_days as i64);
        let midnight = campaign.window_start.plus_days(day);
        if !setup.day_type.matches(midnight.is_weekend()) {
            continue;
        }
        let hour = loop {
            let h = rng.gen_range(0..24u32);
            if CampaignShift::from_hour(h) == setup.shift {
                break h;
            }
        };
        break midnight.plus_minutes(hour as i64 * 60 + rng.gen_range(0..60i64));
    };

    // The audience member: an open-market user (outside the panel's id
    // space), so the DMP draws fresh value factors.
    let user = UserId(1_000_000 + rng.gen_range(0..200_000u32));

    // Publisher: any eligible one matching the channel.
    let publisher = loop {
        let p = eligible[rng.gen_range(0..eligible.len())];
        if p.is_app == (setup.interaction == InteractionType::MobileApp) {
            break p;
        }
    };

    AdRequest {
        time,
        user,
        city: setup.city,
        os: setup.os,
        device: setup.device,
        interaction: setup.interaction,
        publisher: PublisherId(publisher.id.0),
        publisher_name: publisher.name.clone(),
        iab: publisher.iab,
        slot: setup.format,
        adx: setup.adx,
        interest_match: rng.gen_range(0.0..0.3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::MarketConfig;

    fn small_market() -> (Market, PublisherUniverse) {
        (
            Market::new(MarketConfig::default()),
            PublisherUniverse::build(0xD474, 300, 120),
        )
    }

    #[test]
    fn a1_buys_encrypted_ground_truth() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a1().scaled(4));
        assert_eq!(report.setups_completed, 144);
        assert_eq!(report.rows.len(), 144 * 4);
        assert!(!report.budget_exhausted);
        // Every A1 exchange encrypts: browser-side the prices are opaque,
        // yet the report knows every charge.
        for row in &report.rows {
            assert_eq!(row.visibility, PriceVisibility::Encrypted);
            assert!(row.charge.is_positive());
            assert!(row.charge <= Campaign::a1().max_bid);
        }
        assert!(report.spent > MicroUsd::ZERO);
    }

    #[test]
    fn a2_is_cleartext_mopub() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a2().scaled(4));
        for row in &report.rows {
            assert_eq!(row.adx, Adx::MoPub);
            assert_eq!(row.visibility, PriceVisibility::Cleartext);
        }
        assert!(report.distinct_iabs() <= 7);
        assert!(report.distinct_publishers() > 10);
    }

    #[test]
    fn encrypted_campaign_prices_run_higher() {
        // The §6.1 headline must be visible in the raw campaign data.
        let (mut market, universe) = small_market();
        let a1 = execute(&mut market, &universe, &Campaign::a1().scaled(30));
        let a2 = execute(&mut market, &universe, &Campaign::a2().scaled(30));
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let ratio = median(a1.prices_cpm()) / median(a2.prices_cpm());
        assert!(
            (1.25..=2.4).contains(&ratio),
            "A1/A2 median ratio {ratio:.2}"
        );
    }

    #[test]
    fn setups_respect_filters_in_rows() {
        let (mut market, universe) = small_market();
        let report = execute(&mut market, &universe, &Campaign::a2().scaled(3));
        let setups = crate::setups::table5(&[Adx::MoPub]);
        for row in &report.rows {
            let s = &setups[row.setup_id as usize];
            assert_eq!(row.city, s.city);
            assert_eq!(row.os, s.os);
            assert_eq!(row.device, s.device);
            assert_eq!(row.format, s.format);
            assert_eq!(
                CampaignShift::from_hour(row.time.hour()),
                s.shift,
                "delivery inside the shift"
            );
            assert!(s.day_type.matches(row.time.is_weekend()));
        }
    }

    #[test]
    fn budget_stop_works() {
        let (mut market, universe) = small_market();
        let mut tiny = Campaign::a1().scaled(50);
        tiny.budget = MicroUsd(3_000); // three tenths of a cent
        let report = execute(&mut market, &universe, &tiny);
        assert!(report.budget_exhausted);
        assert!(report.rows.len() < 144 * 50);
        assert!(report.spent >= tiny.budget);
    }

    #[test]
    fn deterministic() {
        let (mut m1, u1) = small_market();
        let (mut m2, u2) = small_market();
        let a = execute(&mut m1, &u1, &Campaign::a2().scaled(3));
        let b = execute(&mut m2, &u2, &Campaign::a2().scaled(3));
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.spent, b.spent);
    }
}
