//! Campaign sizing (§5.2).
//!
//! Before paying for impressions, the harness answers two questions from
//! historical data, exactly as the paper does: *how many setups* give an
//! acceptable error on the mean campaign price, and *how many impressions
//! per setup* pin each campaign's own mean down. With the 280 historical
//! MoPub campaigns of dataset D (mean 1.84 CPM, std 2.15 CPM), 144 setups
//! land at ±0.35 CPM and 185 impressions at ±0.1 CPM, both at 95 % CI.

use serde::{Deserialize, Serialize};
use yav_stats::summary::Summary;
use yav_stats::{margin_of_error, required_sample_size};

/// A derived campaign plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// Confidence level used throughout.
    pub confidence: f64,
    /// Historical campaign-price mean (CPM).
    pub historical_mean: f64,
    /// Historical campaign-price std (CPM).
    pub historical_std: f64,
    /// Number of setups to run.
    pub setups: usize,
    /// Resulting margin of error on the mean campaign price (CPM).
    pub setup_margin: f64,
    /// Minimum impressions per setup for the per-campaign margin.
    pub impressions_per_setup: usize,
    /// The per-campaign margin target (CPM).
    pub per_campaign_margin: f64,
}

impl CampaignPlan {
    /// Derives a plan from historical per-campaign mean prices.
    /// `within_campaign_std` is the price dispersion inside the largest
    /// observed campaign (the paper uses MoPub's biggest, 1.8 k
    /// impressions); `per_campaign_margin` is the target error on one
    /// campaign's mean.
    pub fn derive(
        historical_campaign_means: &[f64],
        setups: usize,
        within_campaign_std: f64,
        per_campaign_margin: f64,
        confidence: f64,
    ) -> CampaignPlan {
        let s = Summary::of(historical_campaign_means);
        CampaignPlan {
            confidence,
            historical_mean: s.mean,
            historical_std: s.std,
            setups,
            setup_margin: margin_of_error(confidence, s.std, setups),
            impressions_per_setup: required_sample_size(
                confidence,
                within_campaign_std,
                per_campaign_margin,
            ),
            per_campaign_margin,
        }
    }

    /// The paper's own numbers, as a reference plan.
    pub fn paper_reference() -> CampaignPlan {
        CampaignPlan {
            confidence: 0.95,
            historical_mean: 1.84,
            historical_std: 2.15,
            setups: 144,
            setup_margin: margin_of_error(0.95, 2.15, 144),
            impressions_per_setup: 185,
            per_campaign_margin: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_margin() {
        let p = CampaignPlan::paper_reference();
        assert!(
            (p.setup_margin - 0.35).abs() < 0.01,
            "margin {}",
            p.setup_margin
        );
        assert_eq!(p.setups, 144);
        assert_eq!(p.impressions_per_setup, 185);
    }

    #[test]
    fn derive_from_synthetic_history() {
        // 280 synthetic campaign means with mean≈1.84, std≈2.15 (paper's
        // dataset-D statistics), built deterministically.
        let means: Vec<f64> = (0..280)
            .map(|i| {
                let u = (i as f64 + 0.5) / 280.0;
                // Inverse-CDF of an exponential-ish shape scaled to the
                // target moments; exact moments are checked loosely.
                1.84 + 2.15 * (-(1.0 - u).ln() - 1.0) / std::f64::consts::SQRT_2
            })
            .collect();
        let plan = CampaignPlan::derive(&means, 144, 0.7, 0.1, 0.95);
        assert!((plan.historical_mean - 1.84).abs() < 0.3);
        assert!(plan.setup_margin < 0.5);
        assert!((150..=250).contains(&plan.impressions_per_setup));
    }

    #[test]
    fn more_setups_tighter_margin() {
        let means: Vec<f64> = (0..100).map(|i| 1.0 + (i % 10) as f64 / 5.0).collect();
        let loose = CampaignPlan::derive(&means, 36, 0.5, 0.1, 0.95);
        let tight = CampaignPlan::derive(&means, 144, 0.5, 0.1, 0.95);
        assert!(tight.setup_margin < loose.setup_margin);
    }
}
