//! Probing ad-campaigns (§5.2–5.3 of the paper).
//!
//! Ground truth for encrypted prices cannot be observed from the browser;
//! it can only be *bought*. The paper ran two real campaigns through a
//! cooperating DSP: **A1** (May 2016, the four price-encrypting
//! exchanges, 632 667 impressions) and **A2** (June 2016, MoPub only,
//! 318 964 impressions), each sweeping 144 experimental setups built from
//! the Table-5 filters. The DSP's performance reports contain the true
//! charge prices — even for impressions whose browser-side notifications
//! were encrypted.
//!
//! This crate reproduces the harness against the simulated market:
//!
//! * [`setups`] — the Table-5 filter vocabulary and the balanced
//!   144-setup design;
//! * [`plan`] — the §5.2 sample-size mathematics;
//! * [`executor`] — buys impressions setup by setup through
//!   [`yav_auction::Market::run_auction_with_probe`], respecting the
//!   bid cap and the campaign budget, and collects the performance
//!   report rows that later train the Price Modeling Engine.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod executor;
pub mod plan;
pub mod setups;

pub use executor::{execute, execute_parallel, Campaign, CampaignReport, ProbeImpression};
pub use plan::CampaignPlan;
pub use setups::{DayType, Setup};
