//! The Table-5 experimental-setup design.
//!
//! Table 5 lists the campaign filters — cities, interaction types,
//! time-of-day shifts, day types, device types, OSes, per-device ad
//! formats and exchanges — and states that 144 setups were attempted.
//! The full cross product is in the thousands, so the paper necessarily
//! ran a *fraction* of it. We reconstruct a balanced fractional design:
//! the 48 combinations of (city × interaction × shift × day-type) each
//! appear three times, with device / OS / format / exchange assigned by
//! coprime strides so every filter value is exercised across the sweep.

use serde::{Deserialize, Serialize};
use yav_types::time::CampaignShift;
use yav_types::{AdSlotSize, Adx, City, DeviceType, InteractionType, Os};

/// Weekday-vs-weekend day-type filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayType {
    /// Monday through Friday.
    Weekday,
    /// Saturday and Sunday.
    Weekend,
}

impl DayType {
    /// Both day types.
    pub const ALL: [DayType; 2] = [DayType::Weekday, DayType::Weekend];

    /// True if a weekend flag matches this type.
    pub fn matches(self, is_weekend: bool) -> bool {
        matches!(
            (self, is_weekend),
            (DayType::Weekend, true) | (DayType::Weekday, false)
        )
    }
}

/// One experimental setup: a full Table-5 filter tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Setup {
    /// Setup index within the design (0-based).
    pub id: u32,
    /// Target city.
    pub city: City,
    /// App vs mobile-web inventory.
    pub interaction: InteractionType,
    /// Time-of-day shift.
    pub shift: CampaignShift,
    /// Weekday vs weekend delivery.
    pub day_type: DayType,
    /// Device class.
    pub device: DeviceType,
    /// Operating system.
    pub os: Os,
    /// Creative format (constrained by device class).
    pub format: AdSlotSize,
    /// Exchange to buy from.
    pub adx: Adx,
}

/// Builds the 144-setup design over the given exchange list (A1 passes
/// the four encrypting exchanges, A2 passes MoPub alone).
///
/// # Panics
/// Panics if `adxs` is empty.
pub fn table5(adxs: &[Adx]) -> Vec<Setup> {
    assert!(!adxs.is_empty(), "need at least one exchange");
    let mut out = Vec::with_capacity(144);
    for id in 0..144u32 {
        let i = id as usize;
        // Mixed radix over the 48 base combinations, repeated 3×.
        let city = City::CAMPAIGN_TARGETS[i % 4];
        let interaction = InteractionType::ALL[(i / 4) % 2];
        let shift = CampaignShift::ALL[(i / 8) % 3];
        let day_type = DayType::ALL[(i / 24) % 2];
        // Secondary dimensions: strides mixed with the repeat index `r`
        // (0..3) so the three occurrences of each base combination differ
        // and every filter value is covered across the sweep.
        let r = i / 48;
        let device = DeviceType::CAMPAIGN_TARGETS[(i + r) % 2];
        let os = Os::CAMPAIGN_TARGETS[(i / 2 + r) % 2];
        let format = match device {
            DeviceType::Tablet => AdSlotSize::TABLET_FORMATS[(i / 3 + r) % 4],
            _ => AdSlotSize::SMARTPHONE_FORMATS[(i / 3 + r) % 4],
        };
        let adx = adxs[(i + r) % adxs.len()];
        out.push(Setup {
            id,
            city,
            interaction,
            shift,
            day_type,
            device,
            os,
            format,
            adx,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_144_unique_setups() {
        let setups = table5(&Adx::ENCRYPTED_TARGETS);
        assert_eq!(setups.len(), 144);
        let unique: HashSet<_> = setups
            .iter()
            .map(|s| {
                (
                    s.city,
                    s.interaction,
                    s.shift,
                    s.day_type,
                    s.device,
                    s.os,
                    s.format,
                    s.adx,
                )
            })
            .collect();
        assert_eq!(unique.len(), 144, "setups must be distinct");
    }

    #[test]
    fn every_filter_value_exercised() {
        let setups = table5(&Adx::ENCRYPTED_TARGETS);
        for city in City::CAMPAIGN_TARGETS {
            assert!(setups.iter().any(|s| s.city == city), "{city}");
        }
        for it in InteractionType::ALL {
            assert!(setups.iter().any(|s| s.interaction == it));
        }
        for shift in CampaignShift::ALL {
            assert!(setups.iter().any(|s| s.shift == shift));
        }
        for dt in DayType::ALL {
            assert!(setups.iter().any(|s| s.day_type == dt));
        }
        for os in Os::CAMPAIGN_TARGETS {
            assert!(setups.iter().any(|s| s.os == os));
        }
        for adx in Adx::ENCRYPTED_TARGETS {
            assert!(setups.iter().any(|s| s.adx == adx));
        }
        for fmt in AdSlotSize::SMARTPHONE_FORMATS {
            assert!(setups.iter().any(|s| s.format == fmt), "{fmt}");
        }
        for fmt in AdSlotSize::TABLET_FORMATS {
            assert!(setups.iter().any(|s| s.format == fmt), "{fmt}");
        }
    }

    #[test]
    fn formats_respect_device_class() {
        for s in table5(&[Adx::MoPub]) {
            match s.device {
                DeviceType::Tablet => assert!(AdSlotSize::TABLET_FORMATS.contains(&s.format)),
                _ => assert!(AdSlotSize::SMARTPHONE_FORMATS.contains(&s.format)),
            }
        }
    }

    #[test]
    fn base_combinations_balanced() {
        let setups = table5(&[Adx::MoPub]);
        let mut counts = std::collections::HashMap::new();
        for s in &setups {
            *counts
                .entry((s.city, s.interaction, s.shift, s.day_type))
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 48);
        assert!(counts.values().all(|&c| c == 3), "each base combo 3×");
    }

    #[test]
    fn day_type_matching() {
        assert!(DayType::Weekend.matches(true));
        assert!(!DayType::Weekend.matches(false));
        assert!(DayType::Weekday.matches(false));
    }

    #[test]
    #[should_panic(expected = "at least one exchange")]
    fn empty_adx_list_rejected() {
        table5(&[]);
    }
}
