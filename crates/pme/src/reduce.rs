//! Dimensionality reduction (§5.1).
//!
//! The 288 available features would make probing campaigns ruinously
//! expensive (thousands of setups at tens of euros each), so the PME
//! selects a small core subset `S ⊆ F` that still explains the cleartext
//! price classes:
//!
//! 1. log-transform the cleartext prices and discretise into 4 balanced
//!    classes (leave-one-out entropy, [`yav_ml::Discretizer`]);
//! 2. drop constant features and the top-variance tail (likely noise);
//! 3. rank the survivors with per-group Random-Forest importances
//!    (the paper's semantically related subsets A–H), keeping the best of
//!    each group plus the global top;
//! 4. verify the reduction with cross-validation on the full vs the
//!    reduced set — the paper reports < 2 % precision and < 6 % recall
//!    loss.
//!
//! When cleartext targets are scarce, [`correlation_filter`] offers the
//! §5.1 fallback that needs no target at all.

use serde::{Deserialize, Serialize};
use yav_analyzer::features::{FeatureGroup, FeatureSchema};
use yav_ml::{cross_validate, CvReport, Dataset, Discretizer, RandomForest, RandomForestConfig};
use yav_stats::pearson;

/// Reduction configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Price classes for the target variable.
    pub classes: usize,
    /// Features whose variance ranks above this percentile (0–1) of the
    /// per-feature variance distribution are dropped as noise.
    pub variance_percentile: f64,
    /// Forest used for importance ranking and verification.
    pub forest: RandomForestConfig,
    /// Core-set size to select.
    pub target_size: usize,
    /// Verification CV folds.
    pub cv_folds: usize,
    /// Row cap (reduction runs on a deterministic subsample).
    pub max_rows: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ReductionConfig {
    fn default() -> ReductionConfig {
        ReductionConfig {
            classes: 4,
            variance_percentile: 0.99,
            forest: RandomForestConfig {
                n_trees: 30,
                tree: yav_ml::TreeConfig {
                    max_depth: 16,
                    ..yav_ml::TreeConfig::default()
                },
                ..RandomForestConfig::default()
            },
            target_size: 24,
            cv_folds: 5,
            max_rows: 8_000,
            seed: 0x5E1E,
        }
    }
}

/// The reduction outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reduction {
    /// Indices (into the 288-schema) surviving the variance filters.
    pub kept_after_filters: Vec<usize>,
    /// The selected core subset, importance-ranked.
    pub selected: Vec<usize>,
    /// Verification CV on the filtered full set.
    pub full_report: CvReport,
    /// Verification CV on the selected subset.
    pub reduced_report: CvReport,
}

impl Reduction {
    /// Precision lost by the reduction (positive = worse).
    pub fn precision_loss(&self) -> f64 {
        self.full_report.precision - self.reduced_report.precision
    }

    /// Recall lost by the reduction.
    pub fn recall_loss(&self) -> f64 {
        self.full_report.recall - self.reduced_report.recall
    }

    /// Names of the selected features.
    pub fn selected_names(&self) -> Vec<String> {
        let schema = FeatureSchema::get();
        self.selected
            .iter()
            .map(|&i| schema.name_of(i).to_owned())
            .collect()
    }
}

/// Runs the §5.1 reduction over analyzer feature rows with cleartext
/// price targets (CPM).
///
/// # Panics
/// Panics if rows/prices are empty or misaligned.
pub fn reduce(rows: &[Vec<f64>], prices_cpm: &[f64], config: &ReductionConfig) -> Reduction {
    assert_eq!(rows.len(), prices_cpm.len(), "one price per row");
    assert!(!rows.is_empty(), "need data to reduce");
    let schema = FeatureSchema::get();

    // Deterministic subsample.
    let (rows, prices): (Vec<&Vec<f64>>, Vec<f64>) = if rows.len() > config.max_rows {
        let stride = rows.len() as f64 / config.max_rows as f64;
        (0..config.max_rows)
            .map(|i| {
                let j = (i as f64 * stride) as usize;
                (&rows[j], prices_cpm[j])
            })
            .unzip()
    } else {
        (rows.iter().collect(), prices_cpm.to_vec())
    };

    // Target variable: 4 balanced log-price classes.
    let discretizer = Discretizer::fit(&prices, config.classes);
    let labels: Vec<usize> = prices.iter().map(|&p| discretizer.assign(p)).collect();

    // Variance filters: drop constants, drop the top-variance tail.
    let n_features = rows[0].len();
    let variances: Vec<f64> = (0..n_features)
        .map(|f| {
            let col: Vec<f64> = rows.iter().map(|r| r[f]).collect();
            yav_stats::Summary::of(&col).std.powi(2)
        })
        .collect();
    let mut positive: Vec<f64> = variances.iter().copied().filter(|&v| v > 0.0).collect();
    positive.sort_by(|a, b| a.total_cmp(b));
    let cut = yav_stats::summary::quantile_sorted(&positive, config.variance_percentile);
    let kept_after_filters: Vec<usize> = (0..n_features)
        .filter(|&f| variances[f] > 0.0 && variances[f] <= cut)
        .collect();

    let full_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| kept_after_filters.iter().map(|&f| r[f]).collect())
        .collect();
    let full_names: Vec<String> = kept_after_filters
        .iter()
        .map(|&f| schema.name_of(f).to_owned())
        .collect();
    let full_data = Dataset::new(full_rows, labels.clone(), config.classes, full_names);

    // Per-group importance ranking (the paper's grouped RF models).
    let forest = RandomForest::fit(&full_data, &config.forest);
    let importances = forest.importances();

    let groups = [
        FeatureGroup::Time,
        FeatureGroup::Http,
        FeatureGroup::Ad,
        FeatureGroup::Dsp,
        FeatureGroup::Publisher,
        FeatureGroup::UserHttp,
        FeatureGroup::UserInterests,
        FeatureGroup::UserLocations,
    ];
    let mut selected: Vec<usize> = Vec::new();
    // Best two features per group first (every aspect represented)…
    for group in groups {
        let mut members: Vec<(usize, f64)> = kept_after_filters
            .iter()
            .enumerate()
            .filter(|(_, &orig)| schema.group_of(orig) == group)
            .map(|(local, &orig)| (orig, importances[local]))
            .collect();
        members.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(orig, _) in members.iter().take(2) {
            if !selected.contains(&orig) {
                selected.push(orig);
            }
        }
    }
    // …then fill with the global top until target size.
    let mut global: Vec<(usize, f64)> = kept_after_filters
        .iter()
        .enumerate()
        .map(|(local, &orig)| (orig, importances[local]))
        .collect();
    global.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (orig, _) in global {
        if selected.len() >= config.target_size {
            break;
        }
        if !selected.contains(&orig) {
            selected.push(orig);
        }
    }

    // Verification: CV on full vs reduced.
    let full_report = cross_validate(&full_data, &config.forest, config.cv_folds, 1, config.seed);
    let reduced_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| selected.iter().map(|&f| r[f]).collect())
        .collect();
    let reduced_names: Vec<String> = selected
        .iter()
        .map(|&f| schema.name_of(f).to_owned())
        .collect();
    let reduced_data = Dataset::new(reduced_rows, labels, config.classes, reduced_names);
    let reduced_report = cross_validate(
        &reduced_data,
        &config.forest,
        config.cv_folds,
        1,
        config.seed,
    );

    Reduction {
        kept_after_filters,
        selected,
        full_report,
        reduced_report,
    }
}

/// The target-free fallback: greedily keeps features, dropping any whose
/// absolute Pearson correlation with an already-kept feature exceeds
/// `threshold`. Returns kept column indices.
pub fn correlation_filter(rows: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    if rows.is_empty() {
        return Vec::new();
    }
    let n_features = rows[0].len();
    let columns: Vec<Vec<f64>> = (0..n_features)
        .map(|f| rows.iter().map(|r| r[f]).collect())
        .collect();
    let mut kept: Vec<usize> = Vec::new();
    for f in 0..n_features {
        // Constants carry no information at all.
        if columns[f].iter().all(|&v| v == columns[f][0]) {
            continue;
        }
        let redundant = kept.iter().any(|&k| {
            pearson(&columns[f], &columns[k])
                .map(|r| r.abs() > threshold)
                .unwrap_or(false)
        });
        if !redundant {
            kept.push(f);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_analyzer::WeblogAnalyzer;
    use yav_auction::{Market, MarketConfig};
    use yav_weblog::{WeblogConfig, WeblogGenerator};

    /// Analyzer feature rows + cleartext prices from a tiny dataset D.
    fn analyzer_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let mut analyzer = WeblogAnalyzer::new();
        let mut rows = Vec::new();
        let mut prices = Vec::new();
        generator.run(
            &mut market,
            |req| {
                if let Some(rec) = analyzer.ingest(&req) {
                    if let Some(p) = rec.meta.cleartext_cpm {
                        rows.push(rec.features);
                        prices.push(p.as_f64());
                    }
                }
            },
            |_| {},
        );
        (rows, prices)
    }

    fn quick_config() -> ReductionConfig {
        ReductionConfig {
            forest: RandomForestConfig {
                n_trees: 12,
                ..RandomForestConfig::default()
            },
            cv_folds: 3,
            max_rows: 2_000,
            ..ReductionConfig::default()
        }
    }

    #[test]
    fn reduction_selects_small_informative_subset() {
        let (rows, prices) = analyzer_data();
        assert!(
            rows.len() > 100,
            "need some cleartext impressions, got {}",
            rows.len()
        );
        let r = reduce(&rows, &prices, &quick_config());
        assert_eq!(r.selected.len(), 24);
        assert!(r.kept_after_filters.len() < 288);
        assert!(r.kept_after_filters.len() > 50);
        // The verification must show modest loss (paper: <2 % precision,
        // <6 % recall; we allow a wider band at tiny scale).
        assert!(
            r.precision_loss() < 0.15,
            "precision loss {}",
            r.precision_loss()
        );
        assert!(r.recall_loss() < 0.15, "recall loss {}", r.recall_loss());
    }

    #[test]
    fn selected_set_covers_multiple_groups() {
        let (rows, prices) = analyzer_data();
        let r = reduce(&rows, &prices, &quick_config());
        let schema = FeatureSchema::get();
        let groups: std::collections::HashSet<_> = r
            .selected
            .iter()
            .map(|&i| format!("{:?}", schema.group_of(i)))
            .collect();
        assert!(
            groups.len() >= 5,
            "core set should span groups, got {groups:?}"
        );
    }

    #[test]
    fn correlation_filter_drops_duplicates() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let x = i as f64;
                vec![x, 2.0 * x, 7.0, (x * 1.7).sin()]
            })
            .collect();
        let kept = correlation_filter(&rows, 0.95);
        // Column 1 duplicates column 0; column 2 is constant.
        assert_eq!(kept, vec![0, 3]);
    }

    #[test]
    fn correlation_filter_empty() {
        assert!(correlation_filter(&[], 0.9).is_empty());
    }
}
