//! The Price Modeling Engine (PME, §3.2 and §5 of the paper).
//!
//! The PME is the centralized back-end of the system: it bootstraps from
//! an offline weblog (dataset D), reduces the 288 available features to a
//! small core set `S` that still explains the cleartext price classes
//! ([`reduce`]), trains a classifier on probing-campaign ground truth
//! ([`model`]), derives the 2015→2016 time-shift correction
//! ([`timeshift`]), and serves versioned client models to YourAdValue
//! installations while accepting anonymous contributions ([`engine`]).
//!
//! Everything the PME learns comes from *observable* data: analyzer
//! detections and buyer-side campaign reports. Simulator ground truth
//! never enters this crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod model;
pub mod reduce;
pub mod timeshift;

pub use engine::{ContributionBatch, Pme};
pub use model::{
    ClientArtifact, ClientModel, CoreContext, EstimateScratch, TrainConfig, TrainedModel,
};
pub use reduce::{correlation_filter, reduce, Reduction, ReductionConfig};
pub use timeshift::TimeShift;
