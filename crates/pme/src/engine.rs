//! The serving engine: versioned models and anonymous contributions.
//!
//! §3.2–3.3: clients periodically poll the PME for fresh model versions
//! and may anonymously contribute the (features, price) observations they
//! encounter, Floodwatch-style, to improve future retraining. The engine
//! is the only shared-mutable component in the workspace, so it wraps its
//! state in a `parking_lot::RwLock` and stays `Send + Sync`.

use crate::model::{self, ClientModel, CoreContext, TrainConfig, TrainedModel};
use crate::timeshift::TimeShift;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use yav_campaign::ProbeImpression;
use yav_stats::{ks_two_sample, KsResult};
use yav_types::Cpm;

/// An anonymous client contribution: auction contexts with the cleartext
/// prices the client could read. No user identifier is ever attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContributionBatch {
    /// Observed (context, cleartext price) pairs.
    pub cleartext: Vec<(CoreContext, Cpm)>,
    /// Contexts of encrypted notifications (no price known).
    pub encrypted: Vec<CoreContext>,
}

impl ContributionBatch {
    /// An empty batch.
    pub fn new() -> ContributionBatch {
        ContributionBatch {
            cleartext: Vec::new(),
            encrypted: Vec::new(),
        }
    }

    /// Total observations in the batch.
    pub fn len(&self) -> usize {
        self.cleartext.len() + self.encrypted.len()
    }

    /// True if nothing was contributed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ContributionBatch {
    fn default() -> Self {
        ContributionBatch::new()
    }
}

#[derive(Debug, Default)]
struct PmeState {
    model: Option<TrainedModel>,
    version: u32,
    time_shift: Option<TimeShift>,
    contributed_cleartext: Vec<(CoreContext, Cpm)>,
    contributed_encrypted: Vec<CoreContext>,
    /// Cleartext price baseline from the last calibration, for drift
    /// detection.
    baseline_cleartext: Vec<f64>,
}

/// The Price Modeling Engine service.
#[derive(Debug, Default)]
pub struct Pme {
    state: RwLock<PmeState>,
}

impl Pme {
    /// A fresh engine with no model.
    pub fn new() -> Pme {
        Pme::default()
    }

    /// Trains (or retrains) from campaign ground truth, bumping the model
    /// version. Returns the new version.
    pub fn train_from_campaign(&self, rows: &[ProbeImpression], config: &TrainConfig) -> u32 {
        let _span = yav_telemetry::span!("pme.engine.train");
        let _trace = yav_trace::trace_span!("pme.train", rows.len());
        let trained = model::train(rows, config);
        Self::record_training_metrics(&trained);
        let mut state = self.state.write();
        state.version += 1;
        let mut client = trained.client.clone();
        client.version = state.version;
        state.model = Some(TrainedModel { client, ..trained });
        state.version
    }

    /// Telemetry common to both training entry points: rows used and the
    /// drift of the tree estimator against the §5.4 regression baseline
    /// (class-median RMSE would be a modeling question; the gauge tracks
    /// the readily available CV accuracy instead of re-deriving it).
    fn record_training_metrics(trained: &TrainedModel) {
        yav_telemetry::counter("pme.engine.trainings").inc();
        yav_telemetry::counter("pme.engine.rows_trained").add(trained.trained_rows as u64);
        yav_telemetry::gauge("pme.engine.cv_accuracy").set(trained.cv.accuracy);
        // Estimate-vs-baseline drift: how far the forest's CV accuracy
        // sits above the linear-regression baseline's R² (both in [0,1];
        // positive = the model is earning its keep).
        yav_telemetry::gauge("pme.engine.estimate_vs_baseline_drift")
            .set(trained.cv.accuracy - trained.regression_baseline.1.max(0.0));
    }

    /// Fits the §6.2 time-shift correction from historical vs recent
    /// cleartext prices.
    pub fn fit_time_shift(&self, historical_cpm: &[f64], recent_cpm: &[f64]) -> TimeShift {
        let ts = TimeShift::fit(historical_cpm, recent_cpm);
        self.state.write().time_shift = Some(ts);
        ts
    }

    /// Installs an externally fitted time-shift (e.g. a stratified fit).
    pub fn set_time_shift(&self, ts: TimeShift) {
        self.state.write().time_shift = Some(ts);
    }

    /// The current time-shift (neutral if never fitted).
    pub fn time_shift(&self) -> TimeShift {
        self.state.read().time_shift.unwrap_or(TimeShift {
            historical_median: f64::NAN,
            recent_median: f64::NAN,
            coefficient: 1.0,
        })
    }

    /// The latest client model, if any — what a YourAdValue poll returns.
    pub fn current_model(&self) -> Option<ClientModel> {
        self.state.read().model.as_ref().map(|m| m.client.clone())
    }

    /// The latest full trained model (server side).
    pub fn trained_model(&self) -> Option<TrainedModel> {
        self.state.read().model.clone()
    }

    /// Current model version (0 = none yet).
    pub fn version(&self) -> u32 {
        self.state.read().version
    }

    /// Server-side batch estimation over the full compiled forest:
    /// encodes every context into one flat row-major matrix and runs the
    /// cache-blocked [`yav_ml::CompiledForest::predict_batch`]. Returns
    /// one CPM estimate per context, or `None` when no model is trained.
    /// Feeds the same `pme.predictions_total` counter as the client path.
    pub fn estimate_batch(&self, contexts: &[CoreContext]) -> Option<Vec<Cpm>> {
        let state = self.state.read();
        let model = state.model.as_ref()?;
        let _span = yav_telemetry::span!("pme.engine.estimate_batch");
        let _trace = yav_trace::trace_span!("pme.estimate_batch", contexts.len());
        let with_publisher = model.client.with_publisher;
        let n_features = model.compiled.n_features();
        let mut flat = Vec::with_capacity(contexts.len() * n_features);
        let mut row = Vec::with_capacity(n_features);
        for ctx in contexts {
            model::encode_into(ctx, with_publisher, &mut row);
            flat.extend_from_slice(&row);
        }
        let classes = model.compiled.predict_batch(&flat, n_features);
        yav_telemetry::counter("pme.predictions_total").add(classes.len() as u64);
        let prices = &model.client.class_prices;
        Some(
            classes
                .into_iter()
                .map(|c| Cpm::from_f64(prices[c]))
                .collect(),
        )
    }

    /// Accepts an anonymous contribution batch.
    pub fn contribute(&self, batch: ContributionBatch) {
        yav_telemetry::counter("pme.engine.rows_contributed").add(batch.len() as u64);
        let mut state = self.state.write();
        state.contributed_cleartext.extend(batch.cleartext);
        state.contributed_encrypted.extend(batch.encrypted);
    }

    /// Number of contributed observations held.
    pub fn contribution_count(&self) -> (usize, usize) {
        let state = self.state.read();
        (
            state.contributed_cleartext.len(),
            state.contributed_encrypted.len(),
        )
    }

    /// Contributed cleartext prices (CPM) — retraining inputs.
    pub fn contributed_prices(&self) -> Vec<f64> {
        self.state
            .read()
            .contributed_cleartext
            .iter()
            .map(|(_, p)| p.as_f64())
            .collect()
    }

    /// Records the cleartext price distribution observed at calibration
    /// time, the reference for later drift detection.
    pub fn set_baseline(&self, cleartext_cpm: &[f64]) {
        self.state.write().baseline_cleartext = cleartext_cpm.to_vec();
    }

    /// §5.2's re-launch trigger: campaigns "can be automated and
    /// re-launched … when the detected cleartext prices deviate from
    /// historical data". Runs a two-sample KS test of recently observed
    /// cleartext prices against the stored baseline; returns the test
    /// when it rejects at `alpha` (i.e. a fresh probing campaign is due),
    /// `None` when prices still match the baseline or no baseline exists.
    pub fn recalibration_due(&self, recent_cleartext: &[f64], alpha: f64) -> Option<KsResult> {
        let state = self.state.read();
        let ks = ks_two_sample(&state.baseline_cleartext, recent_cleartext)?;
        yav_telemetry::gauge("pme.engine.baseline_ks_statistic").set(ks.statistic);
        if ks.rejects_at(alpha) {
            yav_telemetry::counter("pme.engine.recalibrations_triggered").inc();
            Some(ks)
        } else {
            None
        }
    }

    /// Retrains using campaign ground truth *plus* every contributed
    /// cleartext observation (the crowdsourced channel of §3.2). Returns
    /// the new model version.
    pub fn retrain_with_contributions(
        &self,
        rows: &[ProbeImpression],
        config: &TrainConfig,
    ) -> u32 {
        let mut pairs: Vec<(CoreContext, f64)> = rows
            .iter()
            .map(|r| (CoreContext::from(r), r.charge.as_f64()))
            .collect();
        {
            let state = self.state.read();
            pairs.extend(
                state
                    .contributed_cleartext
                    .iter()
                    .map(|(ctx, p)| (ctx.clone(), p.as_f64())),
            );
        }
        let _span = yav_telemetry::span!("pme.engine.train");
        let _trace = yav_trace::trace_span!("pme.train", pairs.len());
        let trained = model::train_pairs(&pairs, config);
        Self::record_training_metrics(&trained);
        let mut state = self.state.write();
        state.version += 1;
        let mut client = trained.client.clone();
        client.version = state.version;
        state.model = Some(TrainedModel { client, ..trained });
        state.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_types::SimTime;
    use yav_weblog::PublisherUniverse;

    fn ground_truth() -> Vec<ProbeImpression> {
        let mut market = Market::new(MarketConfig::default());
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(8)).rows
    }

    fn ctx() -> CoreContext {
        CoreContext {
            city: Some(yav_types::City::Madrid),
            time: SimTime::from_ymd_hm(2015, 7, 1, 10, 0),
            device: yav_types::DeviceType::Smartphone,
            os: yav_types::Os::Android,
            interaction: yav_types::InteractionType::MobileWeb,
            format: Some(yav_types::AdSlotSize::S300x250),
            adx: yav_types::Adx::MoPub,
            iab: Some(yav_types::IabCategory::News),
            publisher: None,
        }
    }

    #[test]
    fn versions_bump_on_retrain() {
        let pme = Pme::new();
        assert_eq!(pme.version(), 0);
        assert!(pme.current_model().is_none());
        let rows = ground_truth();
        let v1 = pme.train_from_campaign(&rows, &TrainConfig::quick());
        assert_eq!(v1, 1);
        let model1 = pme.current_model().unwrap();
        assert_eq!(model1.version, 1);
        let v2 = pme.train_from_campaign(&rows, &TrainConfig::quick());
        assert_eq!(v2, 2);
        assert_eq!(pme.current_model().unwrap().version, 2);
    }

    #[test]
    fn contributions_accumulate() {
        let pme = Pme::new();
        let mut batch = ContributionBatch::new();
        batch.cleartext.push((ctx(), Cpm::from_f64(0.5)));
        batch.encrypted.push(ctx());
        batch.encrypted.push(ctx());
        assert_eq!(batch.len(), 3);
        pme.contribute(batch.clone());
        pme.contribute(batch);
        assert_eq!(pme.contribution_count(), (2, 4));
        assert_eq!(pme.contributed_prices(), vec![0.5, 0.5]);
    }

    #[test]
    fn time_shift_round_trip() {
        let pme = Pme::new();
        assert_eq!(pme.time_shift().coefficient, 1.0);
        let ts = pme.fit_time_shift(&[1.0, 1.0], &[1.3, 1.3]);
        assert!((ts.coefficient - 1.3).abs() < 1e-12);
        assert_eq!(pme.time_shift(), ts);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let pme = std::sync::Arc::new(Pme::new());
        let rows = ground_truth();
        pme.train_from_campaign(&rows, &TrainConfig::quick());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pme = pme.clone();
                std::thread::spawn(move || {
                    let model = pme.current_model().unwrap();
                    model.estimate(&super::tests::ctx()).micros()
                })
            })
            .collect();
        let estimates: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(estimates.windows(2).all(|w| w[0] == w[1]));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::model::TrainConfig;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_types::{Cpm, SimTime};
    use yav_weblog::PublisherUniverse;

    fn rows() -> Vec<ProbeImpression> {
        let mut market = Market::new(MarketConfig::default());
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(8)).rows
    }

    fn ctx() -> CoreContext {
        CoreContext {
            city: Some(yav_types::City::Madrid),
            time: SimTime::from_ymd_hm(2015, 7, 1, 10, 0),
            device: yav_types::DeviceType::Smartphone,
            os: yav_types::Os::Android,
            interaction: yav_types::InteractionType::MobileWeb,
            format: Some(yav_types::AdSlotSize::S300x250),
            adx: yav_types::Adx::MoPub,
            iab: Some(yav_types::IabCategory::News),
            publisher: None,
        }
    }

    #[test]
    fn drift_detection_triggers_on_shifted_prices() {
        let pme = Pme::new();
        let baseline: Vec<f64> = (0..400).map(|i| 0.2 + (i % 50) as f64 / 100.0).collect();
        pme.set_baseline(&baseline);
        // Same distribution: no recalibration.
        assert!(pme.recalibration_due(&baseline, 0.01).is_none());
        // Prices shifted up 60%: recalibration due.
        let shifted: Vec<f64> = baseline.iter().map(|p| p * 1.6).collect();
        let ks = pme
            .recalibration_due(&shifted, 0.01)
            .expect("drift must trigger");
        assert!(ks.p_value < 0.01);
    }

    #[test]
    fn no_baseline_means_no_trigger() {
        let pme = Pme::new();
        assert!(pme.recalibration_due(&[1.0, 2.0, 3.0], 0.05).is_none());
    }

    #[test]
    fn batch_estimation_runs_compiled_forest() {
        let pme = Pme::new();
        assert!(pme.estimate_batch(&[ctx()]).is_none());
        pme.train_from_campaign(&rows(), &TrainConfig::quick());
        let contexts: Vec<CoreContext> = (0..150).map(|_| ctx()).collect();
        let est = pme.estimate_batch(&contexts).unwrap();
        assert_eq!(est.len(), 150);
        assert!(est.iter().all(|e| e.is_positive()));
        // Identical contexts must estimate identically.
        assert!(est.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn prediction_telemetry_is_exported() {
        let pme = Pme::new();
        pme.train_from_campaign(&rows(), &TrainConfig::quick());
        let model = pme.current_model().unwrap();
        let mut scratch = crate::model::EstimateScratch::new();
        let before = yav_telemetry::counter("pme.predictions_total").get();
        let est = model.estimate_into(&ctx(), &mut scratch);
        // The scratch path and the allocating path agree.
        assert_eq!(est, model.estimate(&ctx()));
        assert!(yav_telemetry::counter("pme.predictions_total").get() > before);
        assert!(yav_telemetry::histogram("pme.predict.us").count() > 0);
        let prom = yav_telemetry::prometheus_text();
        assert!(prom.contains("yav_pme_predictions_total"), "{prom}");
        assert!(prom.contains("yav_pme_predict_us"), "{prom}");
        assert!(yav_telemetry::json_snapshot().contains("pme.predict.us"));
    }

    #[test]
    fn contributions_join_retraining() {
        let pme = Pme::new();
        let campaign_rows = rows();
        let v1 = pme.train_from_campaign(&campaign_rows, &TrainConfig::quick());
        // Contribute a block of consistent cleartext observations.
        let mut batch = ContributionBatch::new();
        for _ in 0..300 {
            batch.cleartext.push((ctx(), Cpm::from_f64(0.4)));
        }
        pme.contribute(batch);
        let v2 = pme.retrain_with_contributions(&campaign_rows, &TrainConfig::quick());
        assert_eq!(v2, v1 + 1);
        let model = pme.current_model().unwrap();
        assert_eq!(model.version, v2);
        // The retrained model still estimates sanely on the contributed
        // context.
        let est = model.estimate(&ctx());
        assert!(est.is_positive());
    }
}
