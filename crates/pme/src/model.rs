//! Encrypted-price modeling (§5.4).
//!
//! Campaign ground truth (features → true charge price) trains a Random
//! Forest over four entropy-balanced price classes. The shipped client
//! artifact is a single representative decision tree plus the
//! discretiser — small enough for a browser extension, exactly the form
//! §3.2 describes.
//!
//! The feature set is the §5.4 core set `S`: city, day of week, time of
//! day, ad format, mobile OS, publisher IAB category, exchange and device
//! type. A `with_publisher` variant adds publisher identity (hash
//! buckets); the paper shows it reaches ~95 % in cross-validation but is
//! classic overfitting to the campaign's publisher subset, so the
//! default model excludes it.

use serde::{Deserialize, Serialize};
use yav_analyzer::DetectedImpression;
use yav_campaign::ProbeImpression;
use yav_ml::{
    cross_validate, CompiledForest, CvReport, Dataset, DecisionTree, Discretizer, LinearRegression,
    RandomForest, RandomForestConfig,
};
use yav_types::{
    AdSlotSize, Adx, City, Cpm, DeviceType, IabCategory, InteractionType, Os, SimTime,
};

/// The auction context the core feature set is built from — the common
/// denominator of analyzer detections and campaign report rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreContext {
    /// User city, when known.
    pub city: Option<City>,
    /// Delivery time.
    pub time: SimTime,
    /// Device class.
    pub device: DeviceType,
    /// Operating system.
    pub os: Os,
    /// App vs web inventory.
    pub interaction: InteractionType,
    /// Creative format, when known.
    pub format: Option<AdSlotSize>,
    /// Exchange.
    pub adx: Adx,
    /// Publisher IAB category, when known.
    pub iab: Option<IabCategory>,
    /// Publisher name (only used by the overfitting variant).
    pub publisher: Option<String>,
}

impl From<&ProbeImpression> for CoreContext {
    fn from(r: &ProbeImpression) -> CoreContext {
        CoreContext {
            city: Some(r.city),
            time: r.time,
            device: r.device,
            os: r.os,
            interaction: r.interaction,
            format: Some(r.format),
            adx: r.adx,
            iab: Some(r.iab),
            publisher: Some(r.publisher.clone()),
        }
    }
}

impl From<&DetectedImpression> for CoreContext {
    fn from(d: &DetectedImpression) -> CoreContext {
        CoreContext {
            city: d.city,
            time: d.time,
            device: d.device,
            os: d.os,
            interaction: d.interaction,
            format: d.slot,
            adx: d.adx,
            iab: d.iab,
            publisher: d.publisher.clone(),
        }
    }
}

/// Number of publisher hash buckets in the overfitting variant.
const PUBLISHER_BUCKETS: u64 = 256;

/// Encodes a context into the core feature row. Ordinal encoding keeps
/// the client model tiny; trees carve the categorical ranges themselves.
pub fn encode(ctx: &CoreContext, with_publisher: bool) -> Vec<f64> {
    let mut row = Vec::with_capacity(13);
    encode_into(ctx, with_publisher, &mut row);
    row
}

/// Encodes a context into `out`, reusing its allocation — the hot-path
/// form of [`encode`] (same row, same order).
pub fn encode_into(ctx: &CoreContext, with_publisher: bool, out: &mut Vec<f64>) {
    out.clear();
    encode_append(ctx, with_publisher, out);
}

/// Appends one encoded row to `out` without clearing it first — the
/// building block for flat row-major feature matrices in batch
/// prediction (`rows.len() == n * n_features`).
pub fn encode_append(ctx: &CoreContext, with_publisher: bool, out: &mut Vec<f64>) {
    out.extend_from_slice(&[
        ctx.city.map(|c| c.index() as f64).unwrap_or(10.0),
        ctx.time.time_of_day() as usize as f64,
        ctx.time.day_of_week().index() as f64,
        if ctx.time.is_weekend() { 1.0 } else { 0.0 },
        ctx.device as usize as f64,
        ctx.os as usize as f64,
        if ctx.interaction == InteractionType::MobileApp {
            1.0
        } else {
            0.0
        },
        // Ad format as geometry, not as an ordinal id: the probing
        // campaigns only buy 8 of the ~17 formats seen in the wild, and
        // geometric features let the tree interpolate over unseen sizes
        // instead of extrapolating over an arbitrary enum order.
        ctx.format.map(|f| f.area() as f64).unwrap_or(0.0),
        ctx.format.map(|f| f.width() as f64).unwrap_or(0.0),
        ctx.format.map(|f| f.height() as f64).unwrap_or(0.0),
        ctx.adx.index() as f64,
        ctx.iab.map(|c| c.index() as f64).unwrap_or(18.0),
    ]);
    if with_publisher {
        let bucket = ctx
            .publisher
            .as_deref()
            .map(|p| fxhash(p) % PUBLISHER_BUCKETS)
            .unwrap_or(PUBLISHER_BUCKETS);
        out.push(bucket as f64);
    }
}

/// Feature names matching [`encode`]'s order.
pub fn feature_names(with_publisher: bool) -> Vec<String> {
    let mut names: Vec<String> = [
        "city",
        "time_of_day",
        "day_of_week",
        "is_weekend",
        "device_type",
        "os",
        "is_app",
        "format_area",
        "format_width",
        "format_height",
        "adx",
        "iab",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if with_publisher {
        names.push("publisher_bucket".into());
    }
    names
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of price classes (the paper settles on 4).
    pub classes: usize,
    /// Include publisher identity (the overfitting variant).
    pub with_publisher: bool,
    /// Forest hyper-parameters.
    pub forest: RandomForestConfig,
    /// Cross-validation folds (paper: 10).
    pub cv_folds: usize,
    /// Cross-validation repetitions (paper: 10).
    pub cv_runs: usize,
    /// Subsample cap on training rows (exact-split CART is O(n log n)
    /// per node; campaign reports can be 600 k rows).
    pub max_rows: usize,
    /// Seed for subsampling and CV.
    pub seed: u64,
    /// What to package for clients (§3.2 tree by default).
    pub artifact: ClientArtifact,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            classes: 4,
            with_publisher: false,
            forest: RandomForestConfig {
                n_trees: 40,
                tree: yav_ml::TreeConfig {
                    max_depth: 20,
                    ..yav_ml::TreeConfig::default()
                },
                ..RandomForestConfig::default()
            },
            cv_folds: 10,
            cv_runs: 10,
            max_rows: 36_000,
            seed: 0x9E1,
            artifact: ClientArtifact::Tree,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for tests: fewer trees, folds and runs.
    pub fn quick() -> TrainConfig {
        TrainConfig {
            forest: RandomForestConfig {
                n_trees: 15,
                ..RandomForestConfig::default()
            },
            cv_folds: 5,
            cv_runs: 1,
            max_rows: 6_000,
            ..TrainConfig::default()
        }
    }
}

/// A fully trained PME-side model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Price discretiser fitted on the campaign's charge prices.
    pub discretizer: Discretizer,
    /// The forest (server-side estimator).
    pub forest: RandomForest,
    /// The forest lowered to its flat inference form — what
    /// [`crate::Pme`]'s batch estimation runs on.
    pub compiled: CompiledForest,
    /// Cross-validation metrics (the §5.4 table).
    pub cv: CvReport,
    /// The shipped client artifact.
    pub client: ClientModel,
    /// Rows used for training (after subsampling).
    pub trained_rows: usize,
    /// Regression-baseline diagnostics (the §5.4 negative result):
    /// `(rmse_cpm, r2)` of OLS on the same features.
    pub regression_baseline: (f64, f64),
}

/// Which estimator the PME packages into the [`ClientModel`].
///
/// The paper ships "the model M in the form of a decision tree" (§3.2)
/// — small enough for a browser extension, and the default here. The
/// `Forest` variant ships the full compiled forest instead: a larger
/// download and a heavier per-impression walk, but forest-accurate
/// estimates, and the shape `CompiledForest::predict_batch`'s
/// level-synchronous traversal was built to amortize in batch ingestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientArtifact {
    /// The representative decision tree (paper-faithful default).
    #[default]
    Tree,
    /// The full compiled forest.
    Forest,
}

impl ClientArtifact {
    /// Lowercase label, used by bench output and JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            ClientArtifact::Tree => "tree",
            ClientArtifact::Forest => "forest",
        }
    }
}

/// The compact artifact YourAdValue downloads: one decision tree (or,
/// opt-in, the whole forest), the discretiser, and the encoding recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientModel {
    /// Model version (assigned by the serving engine).
    pub version: u32,
    /// Whether rows must be encoded with the publisher bucket.
    pub with_publisher: bool,
    /// Which estimator `compiled` holds.
    pub artifact: ClientArtifact,
    /// The representative decision tree (arena form, kept for
    /// inspection/serde clients even when the forest is shipped).
    pub tree: DecisionTree,
    /// The shipped estimator lowered to flat form — what the client
    /// walks. The representative tree by default; the full forest under
    /// [`ClientArtifact::Forest`].
    pub compiled: CompiledForest,
    /// The price discretiser.
    pub discretizer: Discretizer,
    /// Representative CPM per class, precomputed for the client.
    pub class_prices: Vec<f64>,
}

/// Reusable row/probability buffers plus pre-resolved telemetry handles
/// for [`ClientModel::estimate_into`] — the allocation-free estimation
/// path. Looking metric handles up by name costs a registry lock per
/// event; a long-lived scratch pays it once.
#[derive(Debug, Clone)]
pub struct EstimateScratch {
    row: Vec<f64>,
    probs: Vec<f64>,
    predictions: yav_telemetry::Counter,
    latency_us: yav_telemetry::Histogram,
}

impl EstimateScratch {
    /// A fresh scratch (resolves the `pme.predictions_total` counter and
    /// `pme.predict.us` histogram once).
    pub fn new() -> EstimateScratch {
        EstimateScratch {
            row: Vec::with_capacity(13),
            probs: Vec::new(),
            predictions: yav_telemetry::counter("pme.predictions_total"),
            latency_us: yav_telemetry::histogram("pme.predict.us"),
        }
    }
}

impl Default for EstimateScratch {
    fn default() -> EstimateScratch {
        EstimateScratch::new()
    }
}

impl ClientModel {
    /// Estimates a charge price for one auction context — the
    /// `ESe(S_i)` of the paper's Equation 3. Allocating convenience;
    /// per-impression callers should hold an [`EstimateScratch`] and use
    /// [`ClientModel::estimate_into`].
    pub fn estimate(&self, ctx: &CoreContext) -> Cpm {
        let row = encode(ctx, self.with_publisher);
        let class = self.compiled.predict(&row);
        Cpm::from_f64(self.class_prices[class])
    }

    /// [`ClientModel::estimate`] without per-call allocation: encodes
    /// into the scratch row, walks the compiled tree, and records the
    /// `pme.predict.us` latency histogram and `pme.predictions_total`
    /// counter. Returns the identical estimate.
    pub fn estimate_into(&self, ctx: &CoreContext, scratch: &mut EstimateScratch) -> Cpm {
        let _timer = scratch.latency_us.time_us();
        encode_into(ctx, self.with_publisher, &mut scratch.row);
        scratch.probs.resize(self.compiled.n_classes(), 0.0);
        let class = self.compiled.predict_with(&scratch.row, &mut scratch.probs);
        scratch.predictions.inc();
        yav_trace::trace_instant!("pme.predict", class);
        Cpm::from_f64(self.class_prices[class])
    }
}

/// Trains the §5.4 model from campaign ground truth.
///
/// # Panics
/// Panics if `rows` has fewer than `classes` entries.
pub fn train(rows: &[ProbeImpression], config: &TrainConfig) -> TrainedModel {
    let pairs: Vec<(CoreContext, f64)> = rows
        .iter()
        .map(|r| (CoreContext::from(r), r.charge.as_f64()))
        .collect();
    train_pairs(&pairs, config)
}

/// Trains from raw (context, price-CPM) pairs — the common denominator of
/// campaign performance reports and anonymous client contributions.
///
/// # Panics
/// Panics if `pairs` has fewer than `classes` entries.
pub fn train_pairs(pairs: &[(CoreContext, f64)], config: &TrainConfig) -> TrainedModel {
    assert!(pairs.len() >= config.classes, "not enough ground truth");

    // Deterministic subsample when the report is huge.
    let take: Vec<&(CoreContext, f64)> = if pairs.len() > config.max_rows {
        let stride = pairs.len() as f64 / config.max_rows as f64;
        (0..config.max_rows)
            .map(|i| &pairs[(i as f64 * stride) as usize])
            .collect()
    } else {
        pairs.iter().collect()
    };

    let prices: Vec<f64> = take.iter().map(|(_, p)| *p).collect();
    let discretizer = Discretizer::fit(&prices, config.classes);

    let features: Vec<Vec<f64>> = take
        .iter()
        .map(|(ctx, _)| encode(ctx, config.with_publisher))
        .collect();
    let labels: Vec<usize> = prices.iter().map(|&p| discretizer.assign(p)).collect();
    let data = Dataset::new(
        features.clone(),
        labels,
        config.classes,
        feature_names(config.with_publisher),
    );

    let cv = cross_validate(
        &data,
        &config.forest,
        config.cv_folds,
        config.cv_runs,
        config.seed,
    );
    let forest = RandomForest::fit(&data, &config.forest);
    let compiled = forest.compile();
    let tree = forest.representative_tree(&data).clone();
    let client_compiled = match config.artifact {
        ClientArtifact::Tree => CompiledForest::from_tree(&tree),
        ClientArtifact::Forest => compiled.clone(),
    };

    // The §5.4 regression baseline: OLS on the same features, evaluated
    // in-sample (its failure is evident even there).
    let reg = LinearRegression::fit(&features, &prices);
    let regression_baseline = (reg.rmse(&features, &prices), reg.r2(&features, &prices));

    // Representative price per class: the empirical *median* of the
    // training prices in the class. The mean is dominated by whichever
    // slice of the heavy upper tail the campaign happened to buy, and
    // the geometric mid of the log cuts undervalues skewed classes; the
    // median is the robust middle ground.
    let class_prices: Vec<f64> = (0..config.classes)
        .map(|c| {
            let mut members: Vec<f64> = prices
                .iter()
                .copied()
                .filter(|&p| discretizer.assign(p) == c)
                .collect();
            if members.is_empty() {
                discretizer.class_price(c)
            } else {
                // 5 %-trimmed mean: tail-aware without being dominated by
                // whichever whale impressions the campaign happened to buy.
                members.sort_by(|a, b| a.total_cmp(b));
                let lo = members.len() / 20;
                let hi = members.len() - lo;
                let slice = &members[lo..hi.max(lo + 1)];
                slice.iter().sum::<f64>() / slice.len() as f64
            }
        })
        .collect();
    TrainedModel {
        client: ClientModel {
            version: 0,
            with_publisher: config.with_publisher,
            artifact: config.artifact,
            tree,
            compiled: client_compiled,
            discretizer: discretizer.clone(),
            class_prices,
        },
        discretizer,
        forest,
        compiled,
        cv,
        trained_rows: take.len(),
        regression_baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_weblog::PublisherUniverse;

    fn ground_truth(per_setup: u32) -> Vec<ProbeImpression> {
        let mut market = Market::new(MarketConfig::default());
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(per_setup)).rows
    }

    #[test]
    fn training_produces_accurate_classifier() {
        let rows = ground_truth(40);
        let model = train(&rows, &TrainConfig::quick());
        // The §5.4 ballpark: strong multi-class performance on 4 balanced
        // classes (chance = 25 %).
        assert!(
            model.cv.accuracy > 0.55,
            "cv accuracy {}",
            model.cv.accuracy
        );
        assert!(model.cv.auc_roc > 0.80, "auc {}", model.cv.auc_roc);
        assert!(model.forest.oob_error() < 0.45);
        assert_eq!(model.client.class_prices.len(), 4);
    }

    #[test]
    fn forest_artifact_ships_the_full_forest() {
        let rows = ground_truth(25);
        let tree = train(&rows, &TrainConfig::quick());
        let forest = train(
            &rows,
            &TrainConfig {
                artifact: ClientArtifact::Forest,
                ..TrainConfig::quick()
            },
        );
        assert_eq!(tree.client.artifact, ClientArtifact::Tree);
        assert_eq!(forest.client.artifact, ClientArtifact::Forest);
        // The forest client IS the server-side estimator: identical
        // class predictions to the PME's own compiled forest, and a
        // strictly larger artifact than the single tree.
        assert_eq!(forest.client.compiled, forest.compiled);
        assert!(forest.client.compiled.n_nodes() > tree.client.compiled.n_nodes());
        // Same training run either way: the representative tree and the
        // discretiser don't depend on the shipped artifact.
        assert_eq!(tree.client.tree, forest.client.tree);
        assert_eq!(tree.client.class_prices, forest.client.class_prices);
    }

    #[test]
    fn regression_baseline_is_poor() {
        let rows = ground_truth(25);
        let model = train(&rows, &TrainConfig::quick());
        let (rmse, r2) = model.regression_baseline;
        // High-variance prices leave OLS with a large share of the
        // variance unexplained — the reason the paper switched to classes.
        assert!(r2 < 0.6, "r2 {r2}");
        assert!(rmse > 0.1, "rmse {rmse}");
    }

    #[test]
    fn client_model_estimates_sane_prices() {
        let rows = ground_truth(25);
        let model = train(&rows, &TrainConfig::quick());
        let ctx = CoreContext::from(&rows[0]);
        let est = model.client.estimate(&ctx);
        assert!(est.is_positive());
        // The estimate lands within the observed price range.
        let min = rows.iter().map(|r| r.charge).min().unwrap();
        let max = rows.iter().map(|r| r.charge).max().unwrap();
        assert!(
            est >= min && est <= max,
            "estimate {est} outside [{min}, {max}]"
        );
    }

    #[test]
    fn estimates_track_truth_in_aggregate() {
        let rows = ground_truth(30);
        let model = train(&rows, &TrainConfig::quick());
        let truth_sum: f64 = rows.iter().map(|r| r.charge.as_f64()).sum();
        let est_sum: f64 = rows
            .iter()
            .map(|r| model.client.estimate(&CoreContext::from(r)).as_f64())
            .sum();
        let ratio = est_sum / truth_sum;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "aggregate estimate/truth ratio {ratio:.2}"
        );
    }

    #[test]
    fn publisher_variant_overfits_upward() {
        let rows = ground_truth(25);
        let base = train(&rows, &TrainConfig::quick());
        let with_pub = train(
            &rows,
            &TrainConfig {
                with_publisher: true,
                ..TrainConfig::quick()
            },
        );
        // Publisher identity can only add apparent skill on the campaign's
        // own publishers (the §5.4 overfitting caution).
        assert!(
            with_pub.cv.accuracy >= base.cv.accuracy - 0.02,
            "with_pub {} vs base {}",
            with_pub.cv.accuracy,
            base.cv.accuracy
        );
    }

    #[test]
    fn encode_handles_unknowns() {
        let ctx = CoreContext {
            city: None,
            time: SimTime::EPOCH,
            device: DeviceType::Smartphone,
            os: Os::Other,
            interaction: InteractionType::MobileWeb,
            format: None,
            adx: Adx::MoPub,
            iab: None,
            publisher: None,
        };
        let row = encode(&ctx, true);
        let names = feature_names(true);
        assert_eq!(row.len(), names.len());
        let at = |n: &str| row[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(at("city"), 10.0); // unknown city sentinel
        assert_eq!(at("iab"), 18.0); // unknown IAB sentinel
        assert_eq!(at("format_area"), 0.0);
        assert_eq!(*row.last().unwrap(), PUBLISHER_BUCKETS as f64);
    }

    #[test]
    fn client_model_serde_round_trip() {
        let rows = ground_truth(10);
        let model = train(&rows, &TrainConfig::quick());
        let json = serde_json::to_string(&model.client).unwrap();
        let back: ClientModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model.client);
        let ctx = CoreContext::from(&rows[3]);
        assert_eq!(back.estimate(&ctx), model.client.estimate(&ctx));
    }

    #[test]
    fn subsampling_caps_training_rows() {
        let rows = ground_truth(30);
        let model = train(
            &rows,
            &TrainConfig {
                max_rows: 500,
                ..TrainConfig::quick()
            },
        );
        assert_eq!(model.trained_rows, 500);
    }
}
