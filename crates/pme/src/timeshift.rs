//! Time-shift correction (§6.2).
//!
//! Dataset D's prices are from 2015; the campaigns ran in 2016. The
//! MoPub-only campaign A2 exists precisely so this gap can be measured:
//! comparing A2's cleartext price distribution with D's MoPub cleartext
//! prices yields a multiplicative coefficient that "time-corrects" the
//! 2015 prices before aggregation (the `cleartext (time corr.)` series of
//! Figure 17).

use serde::{Deserialize, Serialize};
use yav_stats::summary::median;

/// A fitted time-shift coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeShift {
    /// Median of the historical (2015) cleartext prices (CPM).
    pub historical_median: f64,
    /// Median of the recent campaign's cleartext prices (CPM).
    pub recent_median: f64,
    /// The multiplicative correction `recent / historical`.
    pub coefficient: f64,
}

impl TimeShift {
    /// Fits the correction from the two price samples. Returns a neutral
    /// (1.0) shift if either sample is empty or non-positive.
    pub fn fit(historical_cpm: &[f64], recent_cpm: &[f64]) -> TimeShift {
        let h = median(historical_cpm);
        let r = median(recent_cpm);
        let coefficient = if h > 0.0 && r > 0.0 { r / h } else { 1.0 };
        TimeShift {
            historical_median: h,
            recent_median: r,
            coefficient,
        }
    }

    /// Applies the correction to one historical price.
    pub fn correct(&self, cpm: f64) -> f64 {
        cpm * self.coefficient
    }

    /// Stratified fit: one (historical, recent) sample pair per stratum
    /// (the paper's campaigns target "similar IAB categories" so the
    /// shift can be measured within matched content strata, cancelling
    /// composition differences). The coefficient is the median of the
    /// per-stratum median ratios; strata with fewer than `min_n` prices
    /// on either side are skipped. Falls back to the plain fit when no
    /// stratum qualifies.
    pub fn fit_stratified(strata: &[(Vec<f64>, Vec<f64>)], min_n: usize) -> TimeShift {
        let mut ratios = Vec::new();
        let mut hist_all = Vec::new();
        let mut recent_all = Vec::new();
        for (hist, recent) in strata {
            hist_all.extend_from_slice(hist);
            recent_all.extend_from_slice(recent);
            if hist.len() >= min_n && recent.len() >= min_n {
                let h = median(hist);
                let r = median(recent);
                if h > 0.0 && r > 0.0 {
                    ratios.push(r / h);
                }
            }
        }
        if ratios.is_empty() {
            return TimeShift::fit(&hist_all, &recent_all);
        }
        TimeShift {
            historical_median: median(&hist_all),
            recent_median: median(&recent_all),
            coefficient: median(&ratios),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_the_median_ratio() {
        let historical = [1.0, 2.0, 3.0];
        let recent = [2.5, 5.0, 7.5];
        let ts = TimeShift::fit(&historical, &recent);
        assert!((ts.coefficient - 2.5).abs() < 1e-12);
        assert!((ts.correct(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples_are_neutral() {
        assert_eq!(TimeShift::fit(&[], &[1.0]).coefficient, 1.0);
        assert_eq!(TimeShift::fit(&[1.0], &[]).coefficient, 1.0);
        assert_eq!(TimeShift::fit(&[0.0], &[1.0]).coefficient, 1.0);
    }

    #[test]
    fn simulated_drift_is_upward() {
        // The market's yearly drift must surface as a >1 coefficient when
        // comparing 2015 dataset prices with 2016 campaign prices.
        use yav_auction::{Market, MarketConfig};
        use yav_campaign::Campaign;
        use yav_weblog::{PublisherUniverse, WeblogConfig, WeblogGenerator};

        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let mut analyzer = yav_analyzer::WeblogAnalyzer::new();
        generator.run(
            &mut market,
            |req| {
                analyzer.ingest(&req);
            },
            |_| {},
        );
        let report = analyzer.finish();
        let historical: Vec<f64> = report
            .detections
            .iter()
            .filter(|d| d.adx == yav_types::Adx::MoPub)
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect();

        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let a2 = yav_campaign::execute(&mut market, &universe, &Campaign::a2().scaled(20));
        let recent: Vec<f64> = a2.prices_cpm();

        let ts = TimeShift::fit(&historical, &recent);
        assert!(
            ts.coefficient > 1.0,
            "2016 campaign prices should exceed 2015 dataset prices: {ts:?}"
        );
    }
}
