//! Deterministic parallel execution for world building.
//!
//! Every hot path in the pipeline (weblog generation, campaign sweeps,
//! analyzer ingestion, forest training) parallelises the same way: the
//! work is cut into **fixed logical shards** whose randomness derives
//! from `(base seed, shard index)`, the shards run on a scoped worker
//! pool, and the results are merged in shard (or other canonical) order.
//! Because the shard structure never depends on the worker count, the
//! output is identical whether the pool has 1 thread or 64 — the same
//! invariant `RandomForest::fit` has always honoured.
//!
//! [`ExecConfig`] carries the one tunable — how many workers to run —
//! and flows from the CLI (`figures --threads`) through `WeblogConfig`,
//! `campaign::execute_parallel` and `World::build_with`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper clamp for auto-detected worker counts: shards in this workspace
/// are coarse (whole users-blocks, whole campaign setups), so pools wider
/// than this only add scheduling noise.
pub const MAX_AUTO_THREADS: usize = 16;

/// Worker threads matched to the host: `available_parallelism`, clamped
/// to `[1, MAX_AUTO_THREADS]`.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_AUTO_THREADS)
}

/// How many workers the parallel stages may use. Scheduling only: thread
/// count never affects any pipeline output (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Worker threads (1 = serial execution on the calling thread).
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            threads: default_threads(),
        }
    }
}

impl ExecConfig {
    /// Serial execution (one worker, on the calling thread).
    pub fn serial() -> ExecConfig {
        ExecConfig { threads: 1 }
    }

    /// An explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// The effective worker count (never 0).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// Derives an independent RNG seed for one logical shard of a base
/// stream. A splitmix64-style finalizer: nearby `(base, stream)` pairs
/// land far apart, and the result depends on nothing else — reseeding a
/// shard is reproducible anywhere.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(0), f(1), …, f(n-1)` on a scoped worker pool and returns the
/// results **in index order**. Work is handed out through an atomic
/// cursor, so stragglers never stall idle workers; results are slotted by
/// index, so scheduling order can never leak into the output.
///
/// With one worker (or one task) the closures run serially on the
/// calling thread — no pool, no overhead.
///
/// Panics in `f` propagate to the caller after all workers stop.
pub fn par_map_indexed<T, F>(exec: &ExecConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let _span = yav_telemetry::span!("exec.pool.par_map");
    let _trace = yav_trace::trace_span!("exec.par_map", n);
    yav_telemetry::counter("exec.pool.tasks").add(n as u64);
    let workers = exec.threads().min(n.max(1));
    yav_telemetry::gauge("exec.pool.workers").set(workers as f64);

    // Each shard task records into its own trace stream, keyed by this
    // fan-out's generation and the shard index — never by worker thread
    // — so the merged trace is canonical across thread counts. The
    // generation is taken here, on the coordinating thread, keeping it
    // deterministic for a deterministic call sequence.
    let trace_group = if yav_trace::enabled() {
        Some((yav_trace::next_group(), yav_trace::current_ctx()))
    } else {
        None
    };
    let run_shard = |i: usize| match trace_group {
        Some((group, origin)) => yav_trace::stream_scope(
            yav_trace::StreamId {
                group,
                index: i as u32,
            },
            origin,
            || f(i),
        ),
        None => f(i),
    };

    if workers <= 1 {
        return (0..n).map(run_shard).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let worker_parts: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let run_shard = &run_shard;
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, run_shard(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exec worker panicked"))
            .collect()
    })
    .expect("exec pool scope failed");

    let mut tasks_per_worker = Vec::with_capacity(workers);
    for part in worker_parts {
        tasks_per_worker.push(part.len() as f64);
        for (i, value) in part {
            slots[i] = Some(value);
        }
    }
    // Shard balance diagnostic: the spread between the busiest and the
    // idlest worker this call.
    let max = tasks_per_worker.iter().cloned().fold(0.0f64, f64::max);
    let min = tasks_per_worker.iter().cloned().fold(f64::MAX, f64::min);
    yav_telemetry::gauge("exec.pool.shard_imbalance").set(max - min);

    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        let out = par_map_indexed(&ExecConfig::with_threads(4), 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_never_changes_results() {
        let run = |threads| {
            par_map_indexed(&ExecConfig::with_threads(threads), 37, |i| {
                derive_seed(0xD474, i as u64)
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8, 32] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = par_map_indexed(&ExecConfig::default(), 0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(&ExecConfig::default(), 1, |i| i + 7), [7]);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        // Stability: the derivation is part of the output contract; a
        // change here invalidates every committed baseline.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|s| derive_seed(0xD474, s)).collect();
        assert_eq!(seeds.len(), 10_000, "shard seeds must not collide");
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn config_defaults_are_sane() {
        assert!(ExecConfig::default().threads() >= 1);
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert!(default_threads() <= MAX_AUTO_THREADS);
    }

    #[test]
    fn traced_shards_merge_canonically() {
        yav_trace::set_enabled(true);
        let marker = yav_trace::span_name("exec.test_marker");
        let out = par_map_indexed(&ExecConfig::with_threads(4), 6, |i| {
            yav_trace::instant(marker, i as u64);
            i
        });
        yav_trace::set_enabled(false);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        let trace = yav_trace::drain();
        // Other tests in this binary may have traced concurrently; look
        // only at the streams carrying our marker.
        let mine: Vec<_> = trace
            .streams
            .iter()
            .filter(|s| s.records.iter().any(|r| r.name == marker.id()))
            .collect();
        assert_eq!(mine.len(), 6, "one stream per shard");
        let group = mine[0].stream.group;
        assert!(group > 0, "shards get a scoped (non-zero) group");
        for (i, s) in mine.iter().enumerate() {
            assert_eq!(s.stream.group, group, "one generation per par_map");
            assert_eq!(s.stream.index, i as u32, "canonical shard order");
            assert!(s.records.iter().any(|r| r.arg == i as u64));
        }
    }

    #[test]
    fn workers_share_borrowed_environment() {
        let data: Vec<u64> = (0..500).collect();
        let sums = par_map_indexed(&ExecConfig::with_threads(4), 10, |i| {
            data[i * 50..(i + 1) * 50].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
