//! Cross-implementation identity: every available tier of every kernel
//! must agree with the scalar reference on a corpus of random and
//! hostile inputs — bit for bit, verdict for verdict, index for index.
//!
//! This is the property the whole dispatch design rests on: callers
//! never know (or care) which tier ran, so nothing short of exact
//! agreement is acceptable. The corpus stresses the places vector code
//! goes wrong: lane boundaries (lengths 7/8/9, 15/16/17, 31/32/33),
//! bytes with the high bit set (SWAR's 7-bit comparisons must pre-mask
//! them), matches in the unaligned head/tail, and float poison values
//! (NaN, ±inf, -0.0) in the partition columns.
//!
//! The suite runs identically under `--no-default-features` (only the
//! Scalar and Swar tiers exist there) — CI runs both configurations.

use yav_simd::{partition, scan, sha256, Level};

/// Deterministic LCG over arbitrary bytes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn byte(&mut self) -> u8 {
        self.next() as u8
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.byte()).collect()
    }
}

fn available_levels() -> Vec<Level> {
    Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
        .collect()
}

/// Lengths that straddle every vector width in play (8 for SWAR, 16 for
/// SSE2/NEON, 32 for AVX2) plus degenerate sizes.
const LENGTHS: &[usize] = &[0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 200];

#[test]
fn byte_scans_agree_across_tiers_on_random_and_hostile_inputs() {
    let mut rng = Rng(0xC0FFEE);
    for &n in LENGTHS {
        let mut corpus: Vec<Vec<u8>> = vec![
            rng.bytes(n),
            vec![0x80; n], // high bit everywhere: SWAR's 7-bit trap
            vec![0xFF; n], // all-ones
            vec![b'%'; n], // match at every position
            vec![b'a'; n], // no match anywhere
        ];
        // The needle at every single position, alone in a clean field.
        for pos in 0..n {
            let mut v = vec![b'x'; n];
            v[pos] = b'%';
            corpus.push(v);
        }
        for h in &corpus {
            let want_b = scan::find_byte_with(Level::Scalar, h, b'%');
            let want_e = scan::find_either_with(Level::Scalar, h, b'%', b'+');
            let want_h = scan::host_invalid_at_with(Level::Scalar, h);
            for &lvl in &available_levels() {
                assert_eq!(scan::find_byte_with(lvl, h, b'%'), want_b, "{lvl:?} n={n}");
                assert_eq!(
                    scan::find_either_with(lvl, h, b'%', b'+'),
                    want_e,
                    "{lvl:?} n={n}"
                );
                assert_eq!(scan::host_invalid_at_with(lvl, h), want_h, "{lvl:?} n={n}");
            }
        }
    }
}

#[test]
fn case_insensitive_eq_agrees_across_tiers() {
    let mut rng = Rng(0xCA5E);
    for &n in LENGTHS {
        for _ in 0..8 {
            let a = rng.bytes(n);
            // b: sometimes a case-flipped copy, sometimes one byte off,
            // sometimes unrelated.
            let mut b = a.clone();
            match rng.next() % 3 {
                0 => {
                    for x in &mut b {
                        if x.is_ascii_alphabetic() {
                            *x ^= 0x20;
                        }
                    }
                }
                1 if n > 0 => {
                    let i = (rng.next() as usize) % n;
                    b[i] = b[i].wrapping_add(1);
                }
                _ => b = rng.bytes(n),
            }
            let want = scan::eq_ignore_ascii_case_with(Level::Scalar, &a, &b);
            assert_eq!(want, a.eq_ignore_ascii_case(&b), "scalar vs std n={n}");
            for &lvl in &available_levels() {
                assert_eq!(
                    scan::eq_ignore_ascii_case_with(lvl, &a, &b),
                    want,
                    "{lvl:?} n={n}"
                );
            }
        }
    }
}

#[test]
fn multiway_sha256_compression_matches_sequential() {
    let mut rng = Rng(0x5AA5);
    for lanes in 0..=10usize {
        let blocks: Vec<[u8; 64]> = (0..lanes)
            .map(|_| {
                let mut b = [0u8; 64];
                for x in &mut b {
                    *x = rng.byte();
                }
                b
            })
            .collect();
        let init: Vec<[u32; 8]> = (0..lanes)
            .map(|i| {
                let mut s = sha256::H0;
                s[0] ^= i as u32; // distinct chaining values per lane
                s
            })
            .collect();
        let mut want = init.clone();
        for (s, b) in want.iter_mut().zip(&blocks) {
            sha256::compress(s, b);
        }
        for &lvl in &available_levels() {
            let mut got = init.clone();
            sha256::compress_many_with(lvl, &mut got, &blocks);
            assert_eq!(got, want, "{lvl:?} lanes={lanes}");
        }
    }
}

#[test]
fn partition_tiers_agree_on_poisoned_columns() {
    let mut rng = Rng(0xF10A7);
    for &n in LENGTHS {
        let col: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                4 => 0.0,
                _ => ((rng.next() % 1000) as f64 - 500.0) / 8.0,
            })
            .collect();
        for t in [0.0, -0.0, 12.5, f64::INFINITY, f64::NEG_INFINITY] {
            let mut a0 = vec![0u32; n];
            let mut b0 = vec![0u32; n];
            let (lo0, ro0) =
                partition::partition_iota_with(Level::Scalar, &col, t, &mut a0, &mut b0);
            assert_eq!(lo0 + ro0, n);
            // A shuffled segment with repeats for the gather tier.
            let seg: Vec<u32> = (0..n as u32)
                .map(|i| (i * 13 + 5) % n.max(1) as u32)
                .collect();
            let mut sa0 = vec![0u32; n];
            let mut sb0 = vec![0u32; n];
            let (slo0, sro0) =
                partition::partition_seg_with(Level::Scalar, &col, t, &seg, &mut sa0, &mut sb0);
            for &lvl in &available_levels() {
                let mut a1 = vec![0u32; n];
                let mut b1 = vec![0u32; n];
                let (lo1, ro1) = partition::partition_iota_with(lvl, &col, t, &mut a1, &mut b1);
                assert_eq!((lo0, ro0), (lo1, ro1), "{lvl:?} n={n} t={t}");
                assert_eq!(a0[..lo0], a1[..lo1], "{lvl:?} n={n} t={t} left");
                assert_eq!(b0[..ro0], b1[..ro1], "{lvl:?} n={n} t={t} right");
                let mut sa1 = vec![0u32; n];
                let mut sb1 = vec![0u32; n];
                let (slo1, sro1) =
                    partition::partition_seg_with(lvl, &col, t, &seg, &mut sa1, &mut sb1);
                assert_eq!((slo0, sro0), (slo1, sro1), "{lvl:?} n={n} t={t} seg");
                assert_eq!(sa0[..slo0], sa1[..slo1], "{lvl:?} n={n} t={t} seg left");
                assert_eq!(sb0[..sro0], sb1[..sro1], "{lvl:?} n={n} t={t} seg right");
            }
        }
    }
}

#[test]
fn swar_hex_agrees_with_std_parsing_on_hostile_bytes() {
    // Exhaustive per-position invalid bytes are unit-tested in the
    // crate; here, random 16-byte strings over the full byte range.
    let mut rng = Rng(0x4E57);
    for _ in 0..4000 {
        let buf: [u8; 16] = std::array::from_fn(|_| rng.byte());
        let want = std::str::from_utf8(&buf)
            .ok()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            // from_str_radix accepts a leading `+`; the wire format
            // does not, and 16 digits with `+` cannot fill 16 chars
            // anyway — but guard the comparison to digits-only inputs.
            .filter(|_| buf.iter().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(yav_simd::hex::parse_hex16(&buf), want, "input {buf:02x?}");
    }
}
