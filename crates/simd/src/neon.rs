//! NEON byte-scan kernels (aarch64, `native` feature).
//!
//! Deliberately minimal: only the two first-match scans, using the
//! standard `vshrn` 4-bit-per-lane mask narrowing. The charset, SHA-256
//! and partition kernels fall back to SWAR/scalar on aarch64 — this
//! workspace's builders are x86_64, so the aarch64 surface is kept to
//! code simple enough to review by eye. Results are bit-identical to
//! the scalar tier by the same argument as the x86 kernels: the mask's
//! lowest set nibble is the first matching lane.

#![cfg(all(target_arch = "aarch64", feature = "native"))]

use crate::scan::scalar;
use std::arch::aarch64::*;

/// Narrows a 16-lane byte mask to a u64 with 4 bits per lane.
#[target_feature(enable = "neon")]
fn mask_u64(eq: uint8x16_t) -> u64 {
    let narrowed = vshrn_n_u16::<4>(vreinterpretq_u16_u8(eq));
    vget_lane_u64::<0>(vreinterpret_u64_u8(narrowed))
}

/// First occurrence of `b`, 16 bytes per step.
#[target_feature(enable = "neon")]
pub fn find_byte_neon(h: &[u8], b: u8) -> Option<usize> {
    let needle = vdupq_n_u8(b);
    let mut i = 0usize;
    while i + 16 <= h.len() {
        // SAFETY: `i + 16 <= h.len()` keeps the 16-byte load inside `h`.
        let x = unsafe { vld1q_u8(h.as_ptr().add(i)) };
        let m = mask_u64(vceqq_u8(x, needle));
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 2) as usize);
        }
        i += 16;
    }
    scalar::find_byte(&h[i..], b).map(|p| i + p)
}

/// First occurrence of `b1` or `b2`, 16 bytes per step.
#[target_feature(enable = "neon")]
pub fn find_either_neon(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
    let n1 = vdupq_n_u8(b1);
    let n2 = vdupq_n_u8(b2);
    let mut i = 0usize;
    while i + 16 <= h.len() {
        // SAFETY: `i + 16 <= h.len()` keeps the 16-byte load inside `h`.
        let x = unsafe { vld1q_u8(h.as_ptr().add(i)) };
        let m = mask_u64(vorrq_u8(vceqq_u8(x, n1), vceqq_u8(x, n2)));
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 2) as usize);
        }
        i += 16;
    }
    scalar::find_either(&h[i..], b1, b2).map(|p| i + p)
}
