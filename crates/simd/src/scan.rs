//! Byte-scan kernels: first-match searches, host-charset validation and
//! case-insensitive equality, at every [`Level`].
//!
//! These back the nURL parser's hot loops: `%`/`+` discovery during
//! percent-decode, `&`/`=` span splitting, hostname charset checks and
//! the exchange-host table probe. All tiers return identical results —
//! the same `Option<usize>` first-match index, the same verdicts — and
//! the `cross_impl` suite pins that on random and hostile corpora.

use crate::Level;

// ---------------------------------------------------------------------
// Dispatched API. Each function resolves the process-wide tier once per
// call; `*_with` variants take an explicit tier for tests and benches.
// ---------------------------------------------------------------------

/// Index of the first occurrence of `b` in `h`.
#[inline]
pub fn find_byte(h: &[u8], b: u8) -> Option<usize> {
    find_byte_with(crate::level(), h, b)
}

/// Index of the first occurrence of either `b1` or `b2` in `h`.
#[inline]
pub fn find_either(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
    find_either_with(crate::level(), h, b1, b2)
}

/// True when `h` contains `b`.
#[inline]
pub fn contains_byte(h: &[u8], b: u8) -> bool {
    find_byte(h, b).is_some()
}

/// True when `h` contains `b1` or `b2`.
#[inline]
pub fn contains_either(h: &[u8], b1: u8, b2: u8) -> bool {
    find_either(h, b1, b2).is_some()
}

/// Index of the first byte that is **not** valid in a hostname
/// (`A–Z a–z 0–9 . - _`), or `None` when every byte is valid.
#[inline]
pub fn host_invalid_at(h: &[u8]) -> Option<usize> {
    host_invalid_at_with(crate::level(), h)
}

/// ASCII-case-insensitive equality, byte-identical to
/// `a.eq_ignore_ascii_case(b)`: only `A–Z`/`a–z` fold, every other
/// byte (including non-ASCII) compares verbatim.
#[inline]
pub fn eq_ignore_ascii_case(a: &[u8], b: &[u8]) -> bool {
    eq_ignore_ascii_case_with(crate::level(), a, b)
}

/// [`find_byte`] at an explicit tier.
#[inline]
pub fn find_byte_with(level: Level, h: &[u8], b: u8) -> Option<usize> {
    match level {
        Level::Scalar => scalar::find_byte(h, b),
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Sse2/Avx2 only resolve or force when runtime detection
        // proved the CPU feature (Level::available), satisfying the
        // target-feature call contract.
        Level::Sse2 => unsafe { crate::x86::find_byte_sse2(h, b) },
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: as above — Avx2 implies is_x86_feature_detected!("avx2").
        Level::Avx2 => unsafe { crate::x86::find_byte_avx2(h, b) },
        #[cfg(all(target_arch = "aarch64", feature = "native"))]
        // SAFETY: Neon only resolves on aarch64 where NEON is baseline.
        Level::Neon => unsafe { crate::neon::find_byte_neon(h, b) },
        _ => swar::find_byte(h, b),
    }
}

/// [`find_either`] at an explicit tier.
#[inline]
pub fn find_either_with(level: Level, h: &[u8], b1: u8, b2: u8) -> Option<usize> {
    match level {
        Level::Scalar => scalar::find_either(h, b1, b2),
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Sse2 is only dispatched after runtime detection.
        Level::Sse2 => unsafe { crate::x86::find_either_sse2(h, b1, b2) },
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Avx2 is only dispatched after runtime detection.
        Level::Avx2 => unsafe { crate::x86::find_either_avx2(h, b1, b2) },
        #[cfg(all(target_arch = "aarch64", feature = "native"))]
        // SAFETY: Neon only resolves on aarch64 where NEON is baseline.
        Level::Neon => unsafe { crate::neon::find_either_neon(h, b1, b2) },
        _ => swar::find_either(h, b1, b2),
    }
}

/// [`host_invalid_at`] at an explicit tier. NEON falls back to SWAR.
#[inline]
pub fn host_invalid_at_with(level: Level, h: &[u8]) -> Option<usize> {
    match level {
        Level::Scalar => scalar::host_invalid_at(h),
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Sse2 is only dispatched after runtime detection.
        Level::Sse2 => unsafe { crate::x86::host_invalid_at_sse2(h) },
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Avx2 is only dispatched after runtime detection.
        Level::Avx2 => unsafe { crate::x86::host_invalid_at_avx2(h) },
        _ => swar::host_invalid_at(h),
    }
}

/// [`eq_ignore_ascii_case`] at an explicit tier. NEON falls back to SWAR.
#[inline]
pub fn eq_ignore_ascii_case_with(level: Level, a: &[u8], b: &[u8]) -> bool {
    match level {
        Level::Scalar => scalar::eq_ignore_ascii_case(a, b),
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Sse2 is only dispatched after runtime detection.
        Level::Sse2 => unsafe { crate::x86::eq_ignore_ascii_case_sse2(a, b) },
        #[cfg(all(target_arch = "x86_64", feature = "native"))]
        // SAFETY: Avx2 is only dispatched after runtime detection.
        Level::Avx2 => unsafe { crate::x86::eq_ignore_ascii_case_avx2(a, b) },
        _ => swar::eq_ignore_ascii_case(a, b),
    }
}

/// True when `b` is a valid hostname byte (`A–Z a–z 0–9 . - _`) — the
/// single-byte predicate all tiers agree with.
#[inline]
pub fn is_host_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_'
}

// ---------------------------------------------------------------------
// Scalar tier: the canonical reference loops.
// ---------------------------------------------------------------------

pub(crate) mod scalar {
    use super::is_host_byte;

    #[inline]
    pub fn find_byte(h: &[u8], b: u8) -> Option<usize> {
        h.iter().position(|&x| x == b)
    }

    #[inline]
    pub fn find_either(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
        h.iter().position(|&x| x == b1 || x == b2)
    }

    #[inline]
    pub fn host_invalid_at(h: &[u8]) -> Option<usize> {
        h.iter().position(|&b| !is_host_byte(b))
    }

    #[inline]
    pub fn eq_ignore_ascii_case(a: &[u8], b: &[u8]) -> bool {
        a.eq_ignore_ascii_case(b)
    }
}

// ---------------------------------------------------------------------
// SWAR tier: u64 words, 8 bytes per step, safe Rust.
// ---------------------------------------------------------------------

pub(crate) mod swar {
    use super::scalar;

    /// 0x01 in every byte lane.
    pub(crate) const LO: u64 = 0x0101_0101_0101_0101;
    /// 0x80 in every byte lane.
    pub(crate) const HI: u64 = 0x8080_8080_8080_8080;

    /// `b` replicated into every lane.
    #[inline]
    pub(crate) const fn splat(b: u8) -> u64 {
        LO.wrapping_mul(b as u64)
    }

    /// 0x80 in each lane holding a zero byte of `x`. Lanes *above* the
    /// lowest zero may carry spurious bits (borrow propagation), but the
    /// lowest set bit is always exact — which is all first-match
    /// scanning needs.
    #[inline]
    const fn zero_mask(x: u64) -> u64 {
        x.wrapping_sub(LO) & !x & HI
    }

    /// 0x80 in each lane of 7-bit values `v` that is `>= k`. Exact in
    /// every lane: per-lane sums never exceed 0xFF, so no carries cross
    /// lanes. Requires every lane of `v` < 0x80 and `k` <= 0x80.
    #[inline]
    const fn ge7(v: u64, k: u8) -> u64 {
        v.wrapping_add(splat(0x80 - k)) & HI
    }

    /// 0x80 in each lane of 7-bit values `v` equal to `k`. Exact (no
    /// borrows): `d + 0x7F` keeps its high bit clear only when `d == 0`.
    #[inline]
    const fn eq7(v: u64, k: u8) -> u64 {
        let d = v ^ splat(k);
        !d.wrapping_add(splat(0x7f)) & HI
    }

    #[inline]
    pub fn find_byte(h: &[u8], b: u8) -> Option<usize> {
        let needle = splat(b);
        let mut chunks = h.chunks_exact(8);
        let mut i = 0usize;
        for c in chunks.by_ref() {
            let x = u64::from_le_bytes(c.try_into().expect("8-byte chunk")) ^ needle;
            let m = zero_mask(x);
            if m != 0 {
                return Some(i + (m.trailing_zeros() >> 3) as usize);
            }
            i += 8;
        }
        scalar::find_byte(chunks.remainder(), b).map(|p| i + p)
    }

    #[inline]
    pub fn find_either(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
        let (n1, n2) = (splat(b1), splat(b2));
        let mut chunks = h.chunks_exact(8);
        let mut i = 0usize;
        for c in chunks.by_ref() {
            let x = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            // Each mask's lowest set bit is exact, so the OR's lowest
            // set bit is the true first match of either needle.
            let m = zero_mask(x ^ n1) | zero_mask(x ^ n2);
            if m != 0 {
                return Some(i + (m.trailing_zeros() >> 3) as usize);
            }
            i += 8;
        }
        scalar::find_either(chunks.remainder(), b1, b2).map(|p| i + p)
    }

    #[inline]
    pub fn host_invalid_at(h: &[u8]) -> Option<usize> {
        let mut chunks = h.chunks_exact(8);
        let mut i = 0usize;
        for c in chunks.by_ref() {
            let x = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            let msb = x & HI;
            let v = x & !HI;
            let digit = ge7(v, b'0') & !ge7(v, b'9' + 1);
            // Case-fold, then range-test a..z. The fold maps exactly
            // [A-Z] ∪ [a-z] (7-bit) into [a-z]; every other 7-bit value
            // stays outside the range.
            let fold = v | splat(0x20);
            let letter = ge7(fold, b'a') & !ge7(fold, b'z' + 1);
            let punct = eq7(v, b'.') | eq7(v, b'-') | eq7(v, b'_');
            // A lane with its top bit set is non-ASCII (invalid) no
            // matter what its low 7 bits look like.
            let invalid = msb | (HI & !(digit | letter | punct));
            if invalid != 0 {
                return Some(i + (invalid.trailing_zeros() >> 3) as usize);
            }
            i += 8;
        }
        scalar::host_invalid_at(chunks.remainder()).map(|p| i + p)
    }

    /// Lowercases exactly the lanes holding `A..=Z` (top-bit lanes are
    /// excluded, so non-ASCII bytes pass through verbatim, matching
    /// `u8::to_ascii_lowercase`).
    #[inline]
    const fn fold_lower(x: u64) -> u64 {
        let v = x & !HI;
        let upper = ge7(v, b'A') & !ge7(v, b'Z' + 1) & !(x & HI);
        // 0x80 per flagged lane, shifted to 0x20; adds cannot overflow
        // a lane ('Z' + 0x20 = 0x7A < 0x80), so no carries cross lanes.
        x.wrapping_add(upper >> 2)
    }

    #[inline]
    pub fn eq_ignore_ascii_case(a: &[u8], b: &[u8]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        for (x, y) in ca.by_ref().zip(cb.by_ref()) {
            let x = u64::from_le_bytes(x.try_into().expect("8-byte chunk"));
            let y = u64::from_le_bytes(y.try_into().expect("8-byte chunk"));
            if fold_lower(x) != fold_lower(y) {
                return false;
            }
        }
        scalar::eq_ignore_ascii_case(ca.remainder(), cb.remainder())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every tier available in this build.
    fn levels() -> Vec<Level> {
        Level::all()
            .iter()
            .copied()
            .filter(|l| l.available())
            .collect()
    }

    #[test]
    fn find_byte_all_offsets_and_misses() {
        for lvl in levels() {
            for len in 0..40usize {
                let mut h: Vec<u8> = (0..len).map(|i| b'a' + (i % 23) as u8).collect();
                assert_eq!(find_byte_with(lvl, &h, b'%'), None, "{lvl:?} len {len}");
                for pos in 0..len {
                    let saved = h[pos];
                    h[pos] = b'%';
                    assert_eq!(
                        find_byte_with(lvl, &h, b'%'),
                        Some(pos),
                        "{lvl:?} len {len} pos {pos}"
                    );
                    h[pos] = saved;
                }
            }
        }
    }

    #[test]
    fn find_either_picks_the_first_of_both() {
        for lvl in levels() {
            let h = b"abc+def%ghi";
            assert_eq!(find_either_with(lvl, h, b'%', b'+'), Some(3), "{lvl:?}");
            assert_eq!(find_either_with(lvl, h, b'%', b'!'), Some(7), "{lvl:?}");
            assert_eq!(find_either_with(lvl, h, b'!', b'?'), None, "{lvl:?}");
        }
    }

    #[test]
    fn host_invalid_matches_reference_for_every_byte() {
        for lvl in levels() {
            for b in 0..=255u8 {
                // Embed the probe byte at several alignments.
                for pos in [0usize, 3, 7, 8, 15, 16] {
                    let mut h = vec![b'a'; 20];
                    h[pos] = b;
                    let expect = h.iter().position(|&x| !is_host_byte(x));
                    assert_eq!(
                        host_invalid_at_with(lvl, &h),
                        expect,
                        "{lvl:?} byte {b:#x} pos {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn eq_ignore_case_matches_std_on_byte_pairs() {
        for lvl in levels() {
            for a in 0..=255u8 {
                for b in [a, a ^ 0x20, a.wrapping_add(1), b'a', b'Z', 0x80] {
                    let x = [b'x', a, b'y', a, 0, a, a, b'q', a];
                    let y = [b'x', b, b'y', b, 0, b, b, b'q', b];
                    assert_eq!(
                        eq_ignore_ascii_case_with(lvl, &x, &y),
                        x.eq_ignore_ascii_case(&y),
                        "{lvl:?} {a:#x} vs {b:#x}"
                    );
                }
            }
            assert!(!eq_ignore_ascii_case_with(lvl, b"abc", b"abcd"), "{lvl:?}");
            assert!(eq_ignore_ascii_case_with(lvl, b"", b""), "{lvl:?}");
        }
    }
}
