//! Runtime-dispatched SIMD kernels for the workspace's hot paths.
//!
//! Three byte-bashing loops dominate the monitor's per-request cost
//! (BENCH_ingest.json): percent-decode/validation scans in `yav-nurl`,
//! SHA-256 compression behind the encrypted-price HMACs in `yav-crypto`,
//! and the level-synchronous partition sweep in `yav-ml`'s
//! `CompiledForest::predict_batch`. This crate owns the vector kernels
//! for all three so that exactly one place in the workspace contains
//! `unsafe` code and exactly one dispatch policy decides what runs.
//!
//! # Tiers
//!
//! Every kernel exists at up to four [`Level`]s, all producing
//! **bit-identical results**:
//!
//! * [`Level::Scalar`] — the reference loop, byte at a time. This is the
//!   canonical semantics; every other tier is checked against it.
//! * [`Level::Swar`] — SIMD-within-a-register: 8 bytes per step in a
//!   `u64`, pure safe Rust, available on every architecture and under
//!   `--no-default-features`.
//! * [`Level::Sse2`] / [`Level::Avx2`] — 16/32 bytes per step via
//!   `core::arch` intrinsics, compiled only with the `native` feature on
//!   x86_64 and selected only after `is_x86_feature_detected!` proves
//!   the CPU supports them.
//! * [`Level::Neon`] — 16 bytes per step on aarch64 (byte scans only;
//!   the other kernels fall back to SWAR/scalar there).
//!
//! Bit-identity holds by construction: the scan kernels report the same
//! first-match index and the same validity verdicts; the SHA-256 tiers
//! perform the same wrapping 32-bit integer arithmetic lane-wise; the
//! partition tiers are order-preserving compactions of the same
//! comparison (`v <= t`, NaN routed right — `_CMP_LE_OQ` is false on
//! NaN exactly like the scalar `<=`). The `cross_impl` test suite
//! pins this on random and hostile inputs for every available tier.
//!
//! # Dispatch
//!
//! [`level()`] resolves once per process: the best detected tier, capped
//! by the `YAV_SIMD` environment variable (`off`/`scalar`, `swar`,
//! `sse2`, `avx2`, `neon`, `native`). Benches may override it with
//! [`force_level`]. Each public kernel also has an explicit `*_with`
//! variant taking a [`Level`] so tests can cross-check tiers directly
//! without touching process-global state.

#![deny(missing_docs)]
// yav-lint: allow(forbid-unsafe-coverage) — this is the workspace's one
// designated unsafe crate: every unsafe block below a `#[target_feature]`
// boundary carries its own SAFETY comment, enforced by the same lint rule.

pub mod hex;
pub mod partition;
pub mod scan;
pub mod sha256;

#[cfg(all(target_arch = "x86_64", feature = "native"))]
pub(crate) mod x86;

#[cfg(all(target_arch = "aarch64", feature = "native"))]
pub(crate) mod neon;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One implementation tier. Ordered: a greater level is a wider kernel.
/// All levels compute bit-identical results; they differ only in speed
/// and availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Reference byte-at-a-time loops (canonical semantics).
    Scalar = 0,
    /// Portable u64-word SWAR, 8 bytes per step, safe Rust everywhere.
    Swar = 1,
    /// SSE2 intrinsics, 16 bytes per step (x86_64 + `native` feature).
    Sse2 = 2,
    /// AVX2 intrinsics, 32 bytes per step (x86_64 + `native` feature).
    Avx2 = 3,
    /// NEON intrinsics, 16 bytes per step (aarch64 + `native` feature;
    /// byte scans only, other kernels fall back to SWAR/scalar).
    Neon = 4,
}

impl Level {
    /// Every level, ascending. Includes levels this build cannot run —
    /// filter with [`Level::available`].
    pub fn all() -> &'static [Level] {
        &[
            Level::Scalar,
            Level::Swar,
            Level::Sse2,
            Level::Avx2,
            Level::Neon,
        ]
    }

    /// The kebab-case name used by `YAV_SIMD` and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Swar => "swar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
            Level::Neon => "neon",
        }
    }

    /// True when this tier can run in this build on this CPU.
    pub fn available(self) -> bool {
        match self {
            Level::Scalar | Level::Swar => true,
            #[cfg(all(target_arch = "x86_64", feature = "native"))]
            Level::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(all(target_arch = "x86_64", feature = "native"))]
            Level::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(all(target_arch = "aarch64", feature = "native"))]
            Level::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Scalar,
            1 => Level::Swar,
            2 => Level::Sse2,
            3 => Level::Avx2,
            _ => Level::Neon,
        }
    }
}

/// The best available tier on this CPU in this build.
pub fn detect_best() -> Level {
    Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
        .max()
        .unwrap_or(Level::Scalar)
}

/// A one-line summary of what detection found, for bench metadata:
/// e.g. `"avx2,sse2"` on a modern x86_64 box, `"portable"` when the
/// `native` feature is off or nothing beyond SWAR exists.
pub fn detected_features() -> String {
    let native: Vec<&str> = Level::all()
        .iter()
        .copied()
        .filter(|l| *l > Level::Swar && l.available())
        .rev()
        .map(Level::name)
        .collect();
    if native.is_empty() {
        "portable".to_owned()
    } else {
        native.join(",")
    }
}

/// Test/bench override: `0` = none, otherwise `level as u8 + 1`.
static FORCE: AtomicU8 = AtomicU8::new(0);
/// The env/detection resolution, computed once.
static RESOLVED: OnceLock<Level> = OnceLock::new();

/// The active tier: a [`force_level`] override if set, else the
/// once-resolved combination of detection and the `YAV_SIMD` env var.
#[inline]
pub fn level() -> Level {
    let f = FORCE.load(Ordering::Relaxed);
    if f != 0 {
        return Level::from_u8(f - 1);
    }
    *RESOLVED.get_or_init(resolve)
}

/// Forces the dispatch tier (or clears the override with `None`).
///
/// Intended for single-threaded bench sections; correctness never
/// depends on the tier (all tiers are bit-identical), so a concurrent
/// reader only ever observes a different speed.
///
/// # Panics
/// Panics when the requested level is not [`Level::available`].
pub fn force_level(level: Option<Level>) {
    if let Some(l) = level {
        assert!(l.available(), "cannot force unavailable level {:?}", l);
        FORCE.store(l as u8 + 1, Ordering::Relaxed);
    } else {
        FORCE.store(0, Ordering::Relaxed);
    }
}

/// Resolves `YAV_SIMD` against detection. Unknown values and `native`
/// mean "best detected"; a requested tier is degraded to the best
/// available tier at or below it, bottoming out at SWAR.
fn resolve() -> Level {
    let best = detect_best();
    let Ok(raw) = std::env::var("YAV_SIMD") else {
        return best;
    };
    let want = match raw.to_ascii_lowercase().as_str() {
        "off" | "scalar" => Level::Scalar,
        "swar" | "portable" => Level::Swar,
        "sse2" => Level::Sse2,
        "avx2" => Level::Avx2,
        "neon" => Level::Neon,
        _ => return best,
    };
    if want.available() {
        return want;
    }
    Level::all()
        .iter()
        .copied()
        .filter(|l| *l <= want && l.available())
        .max()
        .unwrap_or(Level::Swar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_swar_always_available() {
        assert!(Level::Scalar.available());
        assert!(Level::Swar.available());
        assert!(detect_best() >= Level::Swar);
    }

    #[test]
    fn names_round_trip_sorted() {
        for l in Level::all() {
            assert!(!l.name().is_empty());
        }
        assert!(Level::Scalar < Level::Swar);
        assert!(Level::Swar < Level::Avx2);
    }

    #[test]
    fn force_level_overrides_and_clears() {
        force_level(Some(Level::Swar));
        assert_eq!(level(), Level::Swar);
        force_level(None);
        assert!(level().available());
    }

    #[test]
    #[should_panic(expected = "cannot force unavailable level")]
    fn forcing_unavailable_level_panics() {
        // Neon is never available on x86_64 builds and Sse2 never on
        // aarch64, so one of the two must be unavailable everywhere.
        let l = if Level::Neon.available() {
            Level::Sse2
        } else {
            Level::Neon
        };
        force_level(Some(l));
    }

    #[test]
    fn detected_features_is_nonempty() {
        assert!(!detected_features().is_empty());
    }
}
