//! SHA-256 compression: the canonical scalar kernel plus 4-way (SSE2)
//! and 8-way (AVX2) multi-block variants.
//!
//! `yav-crypto` owns padding, streaming and the HMAC construction; this
//! module owns only the 64-round compression function, so there is
//! exactly one scalar implementation in the workspace and the multiway
//! tiers are trivially bit-identical: SHA-256 is pure wrapping 32-bit
//! integer arithmetic, and the vector tiers run the same operations
//! lane-wise with each lane holding one independent (state, block)
//! pair. Lanes never interact, so an N-way compression of N pairs
//! produces exactly the N scalar results.
//!
//! The multiway entry point is [`compress_many`]: N independent states,
//! each advanced by its own block. HMAC batching in `yav-crypto` leans
//! on this — same-key MACs share precomputed ipad/opad midstates and
//! finish with one single-block compression per message, which is
//! exactly the shape `compress_many` vectorises.

use crate::Level;

/// Initial hash state: the fractional parts of the square roots of the
/// first eight primes (FIPS 180-4).
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: the fractional parts of the cube roots of the first
/// 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// One 64-round compression of `state` by one 512-bit block — the
/// canonical scalar kernel every other tier is measured against.
/// Inlinable across crates: `yav-crypto` calls this per block on hot
/// key-derivation paths, and the cross-crate call boundary alone costs
/// a few percent per block without it.
#[inline]
pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Advances `states[i]` by `blocks[i]` for every `i` — N independent
/// single-block compressions, vectorised 8 lanes (AVX2) or 4 lanes
/// (SSE2) at a time with a scalar tail. Bit-identical to calling
/// [`compress`] per pair.
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn compress_many(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    compress_many_with(crate::level(), states, blocks)
}

/// [`compress_many`] at an explicit tier.
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn compress_many_with(level: Level, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    assert_eq!(states.len(), blocks.len(), "lane count mismatch");
    #[cfg_attr(
        not(all(target_arch = "x86_64", feature = "native")),
        allow(unused_mut)
    )]
    let mut i = 0usize;
    #[cfg(all(target_arch = "x86_64", feature = "native"))]
    {
        if level >= Level::Avx2 && Level::Avx2.available() {
            while states.len() - i >= 8 {
                // SAFETY: Avx2 availability was just checked against
                // runtime detection, satisfying the target-feature call
                // contract.
                unsafe { compress_x8_avx2(&mut states[i..i + 8], &blocks[i..i + 8]) };
                i += 8;
            }
        }
        if level >= Level::Sse2 && Level::Sse2.available() {
            while states.len() - i >= 4 {
                // SAFETY: Sse2 availability was just checked against
                // runtime detection.
                unsafe { compress_x4_sse2(&mut states[i..i + 4], &blocks[i..i + 4]) };
                i += 4;
            }
        }
    }
    let _ = level;
    for j in i..states.len() {
        compress(&mut states[j], &blocks[j]);
    }
}

/// Big-endian message word `t` of `block`.
#[cfg(all(target_arch = "x86_64", feature = "native"))]
#[inline]
fn be_word(block: &[u8; 64], t: usize) -> u32 {
    u32::from_be_bytes([
        block[t * 4],
        block[t * 4 + 1],
        block[t * 4 + 2],
        block[t * 4 + 3],
    ])
}

/// 8 independent compressions, one per 32-bit AVX2 lane. Exactly 8
/// (state, block) pairs.
#[cfg(all(target_arch = "x86_64", feature = "native"))]
#[target_feature(enable = "avx2")]
fn compress_x8_avx2(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    use std::arch::x86_64::*;
    debug_assert!(states.len() == 8 && blocks.len() == 8);

    // Transpose the 8 message schedules and 8 states to lane-major
    // form, then lift into vectors. The scalar transpose is cheap next
    // to 64 vector rounds.
    let mut wt = [[0u32; 8]; 16];
    for (t, row) in wt.iter_mut().enumerate() {
        for (lane, slot) in row.iter_mut().enumerate() {
            *slot = be_word(&blocks[lane], t);
        }
    }
    let mut st = [[0u32; 8]; 8];
    for (word, row) in st.iter_mut().enumerate() {
        for (lane, slot) in row.iter_mut().enumerate() {
            *slot = states[lane][word];
        }
    }
    macro_rules! load {
        ($arr:expr) => {
            // SAFETY: the operand is a [u32; 8] = 32 bytes, exactly one
            // unaligned 256-bit load.
            unsafe { _mm256_loadu_si256($arr.as_ptr().cast()) }
        };
    }
    let mut w = [
        load!(wt[0]),
        load!(wt[1]),
        load!(wt[2]),
        load!(wt[3]),
        load!(wt[4]),
        load!(wt[5]),
        load!(wt[6]),
        load!(wt[7]),
        load!(wt[8]),
        load!(wt[9]),
        load!(wt[10]),
        load!(wt[11]),
        load!(wt[12]),
        load!(wt[13]),
        load!(wt[14]),
        load!(wt[15]),
    ];
    let (mut a, mut b, mut c, mut d) = (load!(st[0]), load!(st[1]), load!(st[2]), load!(st[3]));
    let (mut e, mut f, mut g, mut h) = (load!(st[4]), load!(st[5]), load!(st[6]), load!(st[7]));

    macro_rules! ror {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(
                _mm256_srli_epi32::<$n>($x),
                _mm256_slli_epi32::<{ 32 - $n }>($x),
            )
        };
    }
    macro_rules! add {
        ($a:expr, $b:expr) => { _mm256_add_epi32($a, $b) };
        ($a:expr, $b:expr, $($rest:expr),+) => { _mm256_add_epi32($a, add!($b, $($rest),+)) };
    }
    macro_rules! xor3 {
        ($a:expr, $b:expr, $c:expr) => {
            _mm256_xor_si256($a, _mm256_xor_si256($b, $c))
        };
    }

    for t in 0..64 {
        let wv = if t < 16 {
            w[t]
        } else {
            let w15 = w[(t - 15) & 15];
            let w2 = w[(t - 2) & 15];
            let s0 = xor3!(ror!(w15, 7), ror!(w15, 18), _mm256_srli_epi32::<3>(w15));
            let s1 = xor3!(ror!(w2, 17), ror!(w2, 19), _mm256_srli_epi32::<10>(w2));
            let nw = add!(w[t & 15], s0, w[(t - 7) & 15], s1);
            w[t & 15] = nw;
            nw
        };
        let s1 = xor3!(ror!(e, 6), ror!(e, 11), ror!(e, 25));
        // ch = (e & f) ^ (!e & g): andnot computes !x & y.
        let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
        let temp1 = add!(h, s1, ch, _mm256_set1_epi32(K[t] as i32), wv);
        let s0 = xor3!(ror!(a, 2), ror!(a, 13), ror!(a, 22));
        let maj = xor3!(
            _mm256_and_si256(a, b),
            _mm256_and_si256(a, c),
            _mm256_and_si256(b, c)
        );
        let temp2 = add!(s0, maj);
        h = g;
        g = f;
        f = e;
        e = add!(d, temp1);
        d = c;
        c = b;
        b = a;
        a = add!(temp1, temp2);
    }

    macro_rules! store_add {
        ($vec:expr, $word:expr) => {{
            let mut tmp = [0u32; 8];
            // SAFETY: tmp is a [u32; 8] = 32 bytes, exactly one
            // unaligned 256-bit store.
            unsafe { _mm256_storeu_si256(tmp.as_mut_ptr().cast(), $vec) };
            for lane in 0..8 {
                states[lane][$word] = states[lane][$word].wrapping_add(tmp[lane]);
            }
        }};
    }
    store_add!(a, 0);
    store_add!(b, 1);
    store_add!(c, 2);
    store_add!(d, 3);
    store_add!(e, 4);
    store_add!(f, 5);
    store_add!(g, 6);
    store_add!(h, 7);
}

/// 4 independent compressions, one per 32-bit SSE2 lane. Exactly 4
/// (state, block) pairs. Mirrors [`compress_x8_avx2`] at half width.
#[cfg(all(target_arch = "x86_64", feature = "native"))]
#[target_feature(enable = "sse2")]
fn compress_x4_sse2(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    use std::arch::x86_64::*;
    debug_assert!(states.len() == 4 && blocks.len() == 4);

    let mut wt = [[0u32; 4]; 16];
    for (t, row) in wt.iter_mut().enumerate() {
        for (lane, slot) in row.iter_mut().enumerate() {
            *slot = be_word(&blocks[lane], t);
        }
    }
    let mut st = [[0u32; 4]; 8];
    for (word, row) in st.iter_mut().enumerate() {
        for (lane, slot) in row.iter_mut().enumerate() {
            *slot = states[lane][word];
        }
    }
    macro_rules! load {
        ($arr:expr) => {
            // SAFETY: the operand is a [u32; 4] = 16 bytes, exactly one
            // unaligned 128-bit load.
            unsafe { _mm_loadu_si128($arr.as_ptr().cast()) }
        };
    }
    let mut w = [
        load!(wt[0]),
        load!(wt[1]),
        load!(wt[2]),
        load!(wt[3]),
        load!(wt[4]),
        load!(wt[5]),
        load!(wt[6]),
        load!(wt[7]),
        load!(wt[8]),
        load!(wt[9]),
        load!(wt[10]),
        load!(wt[11]),
        load!(wt[12]),
        load!(wt[13]),
        load!(wt[14]),
        load!(wt[15]),
    ];
    let (mut a, mut b, mut c, mut d) = (load!(st[0]), load!(st[1]), load!(st[2]), load!(st[3]));
    let (mut e, mut f, mut g, mut h) = (load!(st[4]), load!(st[5]), load!(st[6]), load!(st[7]));

    macro_rules! ror {
        ($x:expr, $n:literal) => {
            _mm_or_si128(_mm_srli_epi32::<$n>($x), _mm_slli_epi32::<{ 32 - $n }>($x))
        };
    }
    macro_rules! add {
        ($a:expr, $b:expr) => { _mm_add_epi32($a, $b) };
        ($a:expr, $b:expr, $($rest:expr),+) => { _mm_add_epi32($a, add!($b, $($rest),+)) };
    }
    macro_rules! xor3 {
        ($a:expr, $b:expr, $c:expr) => {
            _mm_xor_si128($a, _mm_xor_si128($b, $c))
        };
    }

    for t in 0..64 {
        let wv = if t < 16 {
            w[t]
        } else {
            let w15 = w[(t - 15) & 15];
            let w2 = w[(t - 2) & 15];
            let s0 = xor3!(ror!(w15, 7), ror!(w15, 18), _mm_srli_epi32::<3>(w15));
            let s1 = xor3!(ror!(w2, 17), ror!(w2, 19), _mm_srli_epi32::<10>(w2));
            let nw = add!(w[t & 15], s0, w[(t - 7) & 15], s1);
            w[t & 15] = nw;
            nw
        };
        let s1 = xor3!(ror!(e, 6), ror!(e, 11), ror!(e, 25));
        let ch = _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
        let temp1 = add!(h, s1, ch, _mm_set1_epi32(K[t] as i32), wv);
        let s0 = xor3!(ror!(a, 2), ror!(a, 13), ror!(a, 22));
        let maj = xor3!(
            _mm_and_si128(a, b),
            _mm_and_si128(a, c),
            _mm_and_si128(b, c)
        );
        let temp2 = add!(s0, maj);
        h = g;
        g = f;
        f = e;
        e = add!(d, temp1);
        d = c;
        c = b;
        b = a;
        a = add!(temp1, temp2);
    }

    macro_rules! store_add {
        ($vec:expr, $word:expr) => {{
            let mut tmp = [0u32; 4];
            // SAFETY: tmp is a [u32; 4] = 16 bytes, exactly one
            // unaligned 128-bit store.
            unsafe { _mm_storeu_si128(tmp.as_mut_ptr().cast(), $vec) };
            for lane in 0..4 {
                states[lane][$word] = states[lane][$word].wrapping_add(tmp[lane]);
            }
        }};
    }
    store_add!(a, 0);
    store_add!(b, 1);
    store_add!(c, 2);
    store_add!(d, 3);
    store_add!(e, 4);
    store_add!(f, 5);
    store_add!(g, 6);
    store_add!(h, 7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seed: u8) -> [u8; 64] {
        let mut b = [0u8; 64];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = seed
                .wrapping_mul(31)
                .wrapping_add(i as u8)
                .wrapping_mul(167);
        }
        b
    }

    #[test]
    fn compress_many_matches_scalar_at_every_tier_and_width() {
        for lvl in Level::all().iter().copied().filter(|l| l.available()) {
            for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 16, 17, 31] {
                let blocks: Vec<[u8; 64]> = (0..n).map(|i| block(i as u8)).collect();
                let mut states: Vec<[u32; 8]> = (0..n)
                    .map(|i| {
                        let mut s = H0;
                        s[i % 8] = s[i % 8].wrapping_add(i as u32);
                        s
                    })
                    .collect();
                let mut expect = states.clone();
                for (s, b) in expect.iter_mut().zip(&blocks) {
                    compress(s, b);
                }
                compress_many_with(lvl, &mut states, &blocks);
                assert_eq!(states, expect, "{lvl:?} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lane_counts_panic() {
        let mut states = [H0; 2];
        compress_many(&mut states, &[[0u8; 64]; 3]);
    }
}
