//! Fixed-width SWAR hex parsing.
//!
//! The nURL templates ship every identifier as exactly 16 lowercase hex
//! digits (a splitmix64-mixed u64), and each notification carries two or
//! three of them — so this parse sits squarely on the ingest hot path.
//! Fixed width means the whole digit string fits in two 64-bit words, and
//! SWAR is already word-parallel on every architecture, so these kernels
//! need no dispatch: one portable implementation is the fast path and the
//! only path.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// `lane >= k` per 7-bit lane, as `0x80`/`0x00` lane flags. Exact when
/// every lane of `v` is at most `0x7F`: each lane sum is at most
/// `0x7F + (0x80 - k) <= 0xFF`, so no carry crosses lanes.
#[inline]
fn ge7(v: u64, k: u8) -> u64 {
    v.wrapping_add(LO * (0x80 - k as u64)) & HI
}

/// Parses 8 ASCII hex digits (either case) into their 32-bit value, or
/// `None` if any byte is not a hex digit.
pub fn parse_hex8(digits: &[u8; 8]) -> Option<u32> {
    let x = u64::from_be_bytes(*digits);
    // All hex digits are ASCII; a set high bit anywhere means invalid and
    // also guards the exactness of the 7-bit lane comparisons below.
    if x & HI != 0 {
        return None;
    }
    // Letter lanes folded to lowercase; digit lanes (0x30..=0x39) already
    // carry bit 5 and are unchanged.
    let lc = x | (LO * 0x20);
    let digit = ge7(x, b'0') & !ge7(x, b'9' + 1);
    let letter = ge7(lc, b'a') & !ge7(lc, b'f' + 1);
    if (digit | letter) != HI {
        return None;
    }
    // Per-lane value: low nibble, plus 9 on letter lanes ('a' & 0x0F is 1,
    // and 'a' must map to 10). Lane maximum is 0x0F + 9 — no carries.
    let vals = (lc & (LO * 0x0F)) + ((lc >> 6) & LO) * 9;
    // Gather the eight per-byte nibbles (MSB lane first) into 32 bits:
    // bytes -> 16-bit lanes -> 32-bit lanes -> one word.
    let t = ((vals & 0x0F00_0F00_0F00_0F00) >> 4) | (vals & 0x000F_000F_000F_000F);
    let u = ((t & 0x00FF_0000_00FF_0000) >> 8) | (t & 0x0000_00FF_0000_00FF);
    Some((((u & 0x0000_FFFF_0000_0000) >> 16) | (u & 0x0000_0000_0000_FFFF)) as u32)
}

/// Parses 16 ASCII hex digits (either case) into their 64-bit value, or
/// `None` if any byte is not a hex digit. Equivalent to
/// `u64::from_str_radix(s, 16)` on a 16-character input.
pub fn parse_hex16(digits: &[u8; 16]) -> Option<u64> {
    // Split borrows of a fixed-size array: both halves are infallible.
    let hi = parse_hex8(digits[..8].try_into().expect("8-byte half"))?;
    let lo = parse_hex8(digits[8..].try_into().expect("8-byte half"))?;
    Some(((hi as u64) << 32) | lo as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_values() {
        assert_eq!(parse_hex8(b"00000000"), Some(0));
        assert_eq!(parse_hex8(b"ffffffff"), Some(u32::MAX));
        assert_eq!(parse_hex8(b"FFFFFFFF"), Some(u32::MAX));
        assert_eq!(parse_hex8(b"deadBEEF"), Some(0xdead_beef));
        assert_eq!(
            parse_hex16(b"0123456789abcdef"),
            Some(0x0123_4567_89ab_cdef)
        );
        assert_eq!(parse_hex16(b"ffffffffffffffff"), Some(u64::MAX));
    }

    #[test]
    fn agrees_with_from_str_radix_on_random_inputs() {
        // Cheap deterministic generator over the hex alphabet, both cases.
        let alphabet = b"0123456789abcdefABCDEF";
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..2000 {
            let mut buf = [0u8; 16];
            for b in &mut buf {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = alphabet[(state >> 33) as usize % alphabet.len()];
            }
            let s = std::str::from_utf8(&buf).unwrap();
            assert_eq!(
                parse_hex16(&buf),
                u64::from_str_radix(s, 16).ok(),
                "input {s}"
            );
        }
    }

    #[test]
    fn rejects_every_invalid_byte_in_every_position() {
        for pos in 0..16usize {
            for b in 0u8..=255 {
                if b.is_ascii_hexdigit() {
                    continue;
                }
                let mut buf = *b"0123456789abcdef";
                buf[pos] = b;
                assert_eq!(parse_hex16(&buf), None, "byte {b:#04x} at {pos}");
            }
        }
    }

    #[test]
    fn exhaustive_single_byte_agreement() {
        // Every byte value in one lane, scalar-checked.
        for b in 0u8..=255 {
            let mut buf = *b"00000000";
            buf[3] = b;
            let want = (b as char).to_digit(16).map(|d| d << (4 * 4));
            assert_eq!(parse_hex8(&buf), want, "byte {b:#04x}");
        }
    }
}
