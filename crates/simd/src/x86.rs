//! SSE2/AVX2 kernels (x86_64, `native` feature).
//!
//! Every function here is a **safe** `#[target_feature]` function:
//! feature-gated intrinsics without pointer arguments are safe to call
//! inside them, and each pointer load/store sits in its own `unsafe`
//! block with a SAFETY comment proving bounds. Callers (the dispatch
//! arms in the sibling modules) invoke these inside `unsafe` blocks
//! whose obligation — the CPU actually supports the feature — is
//! discharged by runtime detection in [`crate::Level::available`].

#![cfg(all(target_arch = "x86_64", feature = "native"))]

use crate::scan::scalar;
use std::arch::x86_64::*;

// ---------------------------------------------------------------------
// Byte scans.
// ---------------------------------------------------------------------

/// First occurrence of `b`, 16 bytes per step.
#[target_feature(enable = "sse2")]
pub fn find_byte_sse2(h: &[u8], b: u8) -> Option<usize> {
    let needle = _mm_set1_epi8(b as i8);
    let mut i = 0usize;
    while i + 16 <= h.len() {
        // SAFETY: `i + 16 <= h.len()` keeps the 16-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm_loadu_si128(h.as_ptr().add(i).cast()) };
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(x, needle)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 16;
    }
    scalar::find_byte(&h[i..], b).map(|p| i + p)
}

/// First occurrence of `b`, 32 bytes per step.
#[target_feature(enable = "avx2")]
pub fn find_byte_avx2(h: &[u8], b: u8) -> Option<usize> {
    let needle = _mm256_set1_epi8(b as i8);
    let mut i = 0usize;
    while i + 32 <= h.len() {
        // SAFETY: `i + 32 <= h.len()` keeps the 32-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm256_loadu_si256(h.as_ptr().add(i).cast()) };
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, needle)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 32;
    }
    // SSE2 is baseline on x86_64, so this call needs no unsafe.
    find_byte_sse2(&h[i..], b).map(|p| i + p)
}

/// First occurrence of `b1` or `b2`, 16 bytes per step.
#[target_feature(enable = "sse2")]
pub fn find_either_sse2(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
    let n1 = _mm_set1_epi8(b1 as i8);
    let n2 = _mm_set1_epi8(b2 as i8);
    let mut i = 0usize;
    while i + 16 <= h.len() {
        // SAFETY: `i + 16 <= h.len()` keeps the 16-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm_loadu_si128(h.as_ptr().add(i).cast()) };
        let hit = _mm_or_si128(_mm_cmpeq_epi8(x, n1), _mm_cmpeq_epi8(x, n2));
        let m = _mm_movemask_epi8(hit) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 16;
    }
    scalar::find_either(&h[i..], b1, b2).map(|p| i + p)
}

/// First occurrence of `b1` or `b2`, 32 bytes per step.
#[target_feature(enable = "avx2")]
pub fn find_either_avx2(h: &[u8], b1: u8, b2: u8) -> Option<usize> {
    let n1 = _mm256_set1_epi8(b1 as i8);
    let n2 = _mm256_set1_epi8(b2 as i8);
    let mut i = 0usize;
    while i + 32 <= h.len() {
        // SAFETY: `i + 32 <= h.len()` keeps the 32-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm256_loadu_si256(h.as_ptr().add(i).cast()) };
        let hit = _mm256_or_si256(_mm256_cmpeq_epi8(x, n1), _mm256_cmpeq_epi8(x, n2));
        let m = _mm256_movemask_epi8(hit) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 32;
    }
    // SSE2 is baseline on x86_64, so this call needs no unsafe.
    find_either_sse2(&h[i..], b1, b2).map(|p| i + p)
}

// ---------------------------------------------------------------------
// Host charset validation. Unsigned range tests via max/min-compare:
// `max_epu8(x, k) == x` ⇔ `x >= k` (unsigned), so non-ASCII bytes fall
// out of every range naturally and no sign fixup is needed.
// ---------------------------------------------------------------------

/// First byte outside `A–Z a–z 0–9 . - _`, 16 bytes per step.
#[target_feature(enable = "sse2")]
pub fn host_invalid_at_sse2(h: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while i + 16 <= h.len() {
        // SAFETY: `i + 16 <= h.len()` keeps the 16-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm_loadu_si128(h.as_ptr().add(i).cast()) };
        let ge = |k: u8| _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(k as i8)), x);
        let le = |k: u8| _mm_cmpeq_epi8(_mm_min_epu8(x, _mm_set1_epi8(k as i8)), x);
        let digit = _mm_and_si128(ge(b'0'), le(b'9'));
        let fold = _mm_or_si128(x, _mm_set1_epi8(0x20));
        let gef = _mm_cmpeq_epi8(_mm_max_epu8(fold, _mm_set1_epi8(b'a' as i8)), fold);
        let lef = _mm_cmpeq_epi8(_mm_min_epu8(fold, _mm_set1_epi8(b'z' as i8)), fold);
        let letter = _mm_and_si128(gef, lef);
        let eq = |k: u8| _mm_cmpeq_epi8(x, _mm_set1_epi8(k as i8));
        let punct = _mm_or_si128(_mm_or_si128(eq(b'.'), eq(b'-')), eq(b'_'));
        let valid = _mm_or_si128(_mm_or_si128(digit, letter), punct);
        let m = _mm_movemask_epi8(valid) as u32;
        if m != 0xffff {
            return Some(i + (!m & 0xffff).trailing_zeros() as usize);
        }
        i += 16;
    }
    scalar::host_invalid_at(&h[i..]).map(|p| i + p)
}

/// First byte outside `A–Z a–z 0–9 . - _`, 32 bytes per step.
#[target_feature(enable = "avx2")]
pub fn host_invalid_at_avx2(h: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while i + 32 <= h.len() {
        // SAFETY: `i + 32 <= h.len()` keeps the 32-byte unaligned load
        // inside `h`.
        let x = unsafe { _mm256_loadu_si256(h.as_ptr().add(i).cast()) };
        let ge = |k: u8| _mm256_cmpeq_epi8(_mm256_max_epu8(x, _mm256_set1_epi8(k as i8)), x);
        let le = |k: u8| _mm256_cmpeq_epi8(_mm256_min_epu8(x, _mm256_set1_epi8(k as i8)), x);
        let digit = _mm256_and_si256(ge(b'0'), le(b'9'));
        let fold = _mm256_or_si256(x, _mm256_set1_epi8(0x20));
        let gef = _mm256_cmpeq_epi8(_mm256_max_epu8(fold, _mm256_set1_epi8(b'a' as i8)), fold);
        let lef = _mm256_cmpeq_epi8(_mm256_min_epu8(fold, _mm256_set1_epi8(b'z' as i8)), fold);
        let letter = _mm256_and_si256(gef, lef);
        let eq = |k: u8| _mm256_cmpeq_epi8(x, _mm256_set1_epi8(k as i8));
        let punct = _mm256_or_si256(_mm256_or_si256(eq(b'.'), eq(b'-')), eq(b'_'));
        let valid = _mm256_or_si256(_mm256_or_si256(digit, letter), punct);
        let m = _mm256_movemask_epi8(valid) as u32;
        if m != 0xffff_ffff {
            return Some(i + (!m).trailing_zeros() as usize);
        }
        i += 32;
    }
    // SSE2 is baseline on x86_64, so this call needs no unsafe.
    host_invalid_at_sse2(&h[i..]).map(|p| i + p)
}

// ---------------------------------------------------------------------
// Case-insensitive equality: add 0x20 to exactly the `A–Z` lanes of
// both sides, then compare. Unsigned range test keeps non-ASCII lanes
// untouched, matching `eq_ignore_ascii_case`.
// ---------------------------------------------------------------------

/// ASCII-case-insensitive equality, 16 bytes per step.
#[target_feature(enable = "sse2")]
pub fn eq_ignore_ascii_case_sse2(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let lower = |x: __m128i| {
        let ge = _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(b'A' as i8)), x);
        let le = _mm_cmpeq_epi8(_mm_min_epu8(x, _mm_set1_epi8(b'Z' as i8)), x);
        let upper = _mm_and_si128(ge, le);
        _mm_add_epi8(x, _mm_and_si128(upper, _mm_set1_epi8(0x20)))
    };
    let mut i = 0usize;
    while i + 16 <= a.len() {
        // SAFETY: `i + 16 <= a.len() == b.len()` keeps both 16-byte
        // unaligned loads in bounds.
        let (x, y) = unsafe {
            (
                _mm_loadu_si128(a.as_ptr().add(i).cast()),
                _mm_loadu_si128(b.as_ptr().add(i).cast()),
            )
        };
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(lower(x), lower(y))) as u32;
        if m != 0xffff {
            return false;
        }
        i += 16;
    }
    scalar::eq_ignore_ascii_case(&a[i..], &b[i..])
}

/// ASCII-case-insensitive equality, 32 bytes per step.
#[target_feature(enable = "avx2")]
pub fn eq_ignore_ascii_case_avx2(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let lower = |x: __m256i| {
        let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(x, _mm256_set1_epi8(b'A' as i8)), x);
        let le = _mm256_cmpeq_epi8(_mm256_min_epu8(x, _mm256_set1_epi8(b'Z' as i8)), x);
        let upper = _mm256_and_si256(ge, le);
        _mm256_add_epi8(x, _mm256_and_si256(upper, _mm256_set1_epi8(0x20)))
    };
    let mut i = 0usize;
    while i + 32 <= a.len() {
        // SAFETY: `i + 32 <= a.len() == b.len()` keeps both 32-byte
        // unaligned loads in bounds.
        let (x, y) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().add(i).cast()),
                _mm256_loadu_si256(b.as_ptr().add(i).cast()),
            )
        };
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(lower(x), lower(y))) as u32;
        if m != 0xffff_ffff {
            return false;
        }
        i += 32;
    }
    // SSE2 is baseline on x86_64, so this call needs no unsafe.
    eq_ignore_ascii_case_sse2(&a[i..], &b[i..])
}
