//! Order-preserving two-way partition of row indices by a threshold
//! test — the inner sweep of `CompiledForest::predict_batch`'s
//! level-synchronous descent.
//!
//! The contract mirrors the forest's branchless scalar sweep exactly:
//! row `r` goes left when `col[r] <= t` (NaN therefore goes right),
//! left-goers compact into `buf_a[..lo]` and right-goers into
//! `buf_b[..ro]`, both preserving input order. Order preservation is
//! what makes the AVX2 tier bit-identical downstream: each row still
//! receives each leaf contribution in the same sequence, so the vote
//! accumulation performs the same float additions in the same order.
//!
//! The AVX2 tier tests 8 rows per step (two 4-wide `_CMP_LE_OQ`
//! compares), builds an 8-bit verdict mask, and compacts with a
//! 256-entry permutation LUT + `vpermd` and one unaligned store per
//! side. Full 8-row groups may store past the live cursor, which is
//! safe because the destination buffers are at least as long as the
//! input (asserted): with `p` rows processed, `lo + ro == p` and
//! `p + 8 <= n <= buf.len()`, so `lo + 8 <= buf.len()` and likewise
//! `ro`. The over-stored lanes are dead space the next group or the
//! final lengths exclude. Tails shorter than 8 run the scalar sweep.
//! SSE2 has no cross-lane compaction primitive worth the setup for
//! 8-row groups, so below AVX2 every tier runs the (already branchless)
//! scalar sweep.

use crate::Level;

/// Partitions the implicit identity index set `0..col.len()`:
/// `buf_a[..lo]` receives the rows with `col[r] <= t`, `buf_b[..ro]`
/// the rest, both in row order. Returns `(lo, ro)`.
///
/// # Panics
/// Panics when either buffer is shorter than `col`.
#[inline]
pub fn partition_iota(col: &[f64], t: f64, buf_a: &mut [u32], buf_b: &mut [u32]) -> (usize, usize) {
    partition_iota_with(crate::level(), col, t, buf_a, buf_b)
}

/// Partitions the explicit index set `seg`: `buf_a[..lo]` receives the
/// indices with `col[seg[k] as usize] <= t`, `buf_b[..ro]` the rest,
/// both in `seg` order. Returns `(lo, ro)`.
///
/// # Panics
/// Panics when either buffer is shorter than `seg`, or (on any tier)
/// when a `seg` entry indexes past `col`.
#[inline]
pub fn partition_seg(
    col: &[f64],
    t: f64,
    seg: &[u32],
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    partition_seg_with(crate::level(), col, t, seg, buf_a, buf_b)
}

/// [`partition_iota`] at an explicit tier.
pub fn partition_iota_with(
    level: Level,
    col: &[f64],
    t: f64,
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    let n = col.len();
    assert!(
        buf_a.len() >= n && buf_b.len() >= n,
        "partition buffers shorter than input"
    );
    assert!(n <= u32::MAX as usize, "row index exceeds u32");
    #[cfg(all(target_arch = "x86_64", feature = "native"))]
    if level >= Level::Avx2 && Level::Avx2.available() {
        // SAFETY: Avx2 availability was just checked against runtime
        // detection, satisfying the target-feature call contract.
        return unsafe { partition_iota_avx2(col, t, buf_a, buf_b) };
    }
    let _ = level;
    scalar_iota(col, t, buf_a, buf_b)
}

/// [`partition_seg`] at an explicit tier.
pub fn partition_seg_with(
    level: Level,
    col: &[f64],
    t: f64,
    seg: &[u32],
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    assert!(
        buf_a.len() >= seg.len() && buf_b.len() >= seg.len(),
        "partition buffers shorter than segment"
    );
    #[cfg(all(target_arch = "x86_64", feature = "native"))]
    if level >= Level::Avx2 && Level::Avx2.available() && seg.len() >= 8 {
        // The gather has no bounds checks, so validate the whole
        // segment up front (the scalar sweep's checks, hoisted). One
        // pass of max() costs far less than per-element checking.
        let max = seg.iter().copied().max().unwrap_or(0);
        assert!((max as usize) < col.len(), "segment row out of bounds");
        assert!(col.len() <= i32::MAX as usize, "column too long for gather");
        // SAFETY: Avx2 availability was just checked against runtime
        // detection, satisfying the target-feature call contract.
        return unsafe { partition_seg_avx2(col, t, seg, buf_a, buf_b) };
    }
    let _ = level;
    scalar_seg(col, t, seg, buf_a, buf_b)
}

/// The canonical branchless sweep over the identity index set.
fn scalar_iota(col: &[f64], t: f64, buf_a: &mut [u32], buf_b: &mut [u32]) -> (usize, usize) {
    let mut lo = 0usize;
    let mut ro = 0usize;
    for (r, &v) in col.iter().enumerate() {
        let go_left = v <= t;
        buf_a[lo] = r as u32;
        buf_b[ro] = r as u32;
        lo += usize::from(go_left);
        ro += usize::from(!go_left);
    }
    (lo, ro)
}

/// The canonical branchless sweep over an explicit segment.
fn scalar_seg(
    col: &[f64],
    t: f64,
    seg: &[u32],
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    let mut lo = 0usize;
    let mut ro = 0usize;
    for &r in seg {
        let go_left = col[r as usize] <= t;
        buf_a[lo] = r;
        buf_b[ro] = r;
        lo += usize::from(go_left);
        ro += usize::from(!go_left);
    }
    (lo, ro)
}

/// `PERM[m][j]` = the position of the `j`-th set bit of `m` — the
/// `vpermd` selector that compacts mask-selected lanes to the front.
/// Slots past the popcount stay 0; their stored lanes are dead space.
#[cfg(all(target_arch = "x86_64", feature = "native"))]
static PERM: [[u32; 8]; 256] = build_perm();

#[cfg(all(target_arch = "x86_64", feature = "native"))]
const fn build_perm() -> [[u32; 8]; 256] {
    let mut lut = [[0u32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut j = 0usize;
        let mut k = 0usize;
        while k < 8 {
            if m & (1 << k) != 0 {
                lut[m][j] = k as u32;
                j += 1;
            }
            k += 1;
        }
        m += 1;
    }
    lut
}

#[cfg(all(target_arch = "x86_64", feature = "native"))]
#[target_feature(enable = "avx2")]
fn partition_iota_avx2(
    col: &[f64],
    t: f64,
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    use std::arch::x86_64::*;
    let n = col.len();
    let tv = _mm256_set1_pd(t);
    let mut idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let eight = _mm256_set1_epi32(8);
    let mut lo = 0usize;
    let mut ro = 0usize;
    let mut r = 0usize;
    while r + 8 <= n {
        // SAFETY: `r + 8 <= n` keeps both 4-wide f64 loads inside `col`.
        let (v0, v1) = unsafe {
            (
                _mm256_loadu_pd(col.as_ptr().add(r)),
                _mm256_loadu_pd(col.as_ptr().add(r + 4)),
            )
        };
        let m0 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(v0, tv)) as u32;
        let m1 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(v1, tv)) as u32;
        let m = (m0 | (m1 << 4)) as usize;
        // SAFETY: PERM rows are [u32; 8] = 32 bytes each.
        let (perm_l, perm_r) = unsafe {
            (
                _mm256_loadu_si256(PERM[m].as_ptr().cast()),
                _mm256_loadu_si256(PERM[m ^ 0xff].as_ptr().cast()),
            )
        };
        let left = _mm256_permutevar8x32_epi32(idx, perm_l);
        let right = _mm256_permutevar8x32_epi32(idx, perm_r);
        // SAFETY: lo <= r and r + 8 <= n <= buf_a.len(), so the 8-lane
        // store ends at lo + 8 <= buf_a.len(); same for ro/buf_b (see
        // module docs). Lanes past the popcount are dead space.
        unsafe {
            _mm256_storeu_si256(buf_a.as_mut_ptr().add(lo).cast(), left);
            _mm256_storeu_si256(buf_b.as_mut_ptr().add(ro).cast(), right);
        }
        let c = (m as u32).count_ones() as usize;
        lo += c;
        ro += 8 - c;
        idx = _mm256_add_epi32(idx, eight);
        r += 8;
    }
    for (rr, &v) in col.iter().enumerate().take(n).skip(r) {
        let go_left = v <= t;
        buf_a[lo] = rr as u32;
        buf_b[ro] = rr as u32;
        lo += usize::from(go_left);
        ro += usize::from(!go_left);
    }
    (lo, ro)
}

#[cfg(all(target_arch = "x86_64", feature = "native"))]
#[target_feature(enable = "avx2")]
fn partition_seg_avx2(
    col: &[f64],
    t: f64,
    seg: &[u32],
    buf_a: &mut [u32],
    buf_b: &mut [u32],
) -> (usize, usize) {
    use std::arch::x86_64::*;
    let n = seg.len();
    let tv = _mm256_set1_pd(t);
    let mut lo = 0usize;
    let mut ro = 0usize;
    let mut k = 0usize;
    while k + 8 <= n {
        // SAFETY: `k + 8 <= n` keeps the 8-lane index load inside `seg`.
        let idx = unsafe { _mm256_loadu_si256(seg.as_ptr().add(k).cast()) };
        let idx_lo = _mm256_castsi256_si128(idx);
        let idx_hi = _mm256_extracti128_si256::<1>(idx);
        // SAFETY: the caller (partition_seg_with) asserted every seg
        // entry < col.len() <= i32::MAX, so each scale-8 gather lane
        // reads one in-bounds f64.
        let (v0, v1) = unsafe {
            (
                _mm256_i32gather_pd::<8>(col.as_ptr(), idx_lo),
                _mm256_i32gather_pd::<8>(col.as_ptr(), idx_hi),
            )
        };
        let m0 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(v0, tv)) as u32;
        let m1 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(v1, tv)) as u32;
        let m = (m0 | (m1 << 4)) as usize;
        // SAFETY: PERM rows are [u32; 8] = 32 bytes each.
        let (perm_l, perm_r) = unsafe {
            (
                _mm256_loadu_si256(PERM[m].as_ptr().cast()),
                _mm256_loadu_si256(PERM[m ^ 0xff].as_ptr().cast()),
            )
        };
        let left = _mm256_permutevar8x32_epi32(idx, perm_l);
        let right = _mm256_permutevar8x32_epi32(idx, perm_r);
        // SAFETY: lo <= k and k + 8 <= n <= buf_a.len(), so the 8-lane
        // store ends at lo + 8 <= buf_a.len(); same for ro/buf_b (see
        // module docs). Lanes past the popcount are dead space.
        unsafe {
            _mm256_storeu_si256(buf_a.as_mut_ptr().add(lo).cast(), left);
            _mm256_storeu_si256(buf_b.as_mut_ptr().add(ro).cast(), right);
        }
        let c = (m as u32).count_ones() as usize;
        lo += c;
        ro += 8 - c;
        k += 8;
    }
    for &r in &seg[k..] {
        let go_left = col[r as usize] <= t;
        buf_a[lo] = r;
        buf_b[ro] = r;
        lo += usize::from(go_left);
        ro += usize::from(!go_left);
    }
    (lo, ro)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| match i % 9 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                k => (i as f64) * if k % 2 == 0 { -1.3 } else { 0.7 },
            })
            .collect()
    }

    #[test]
    fn every_tier_matches_scalar_iota() {
        for lvl in Level::all().iter().copied().filter(|l| l.available()) {
            for n in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 40, 100] {
                let col = column(n);
                let t = 3.5;
                let mut a0 = vec![0u32; n];
                let mut b0 = vec![0u32; n];
                let (lo0, ro0) = partition_iota_with(Level::Scalar, &col, t, &mut a0, &mut b0);
                let mut a1 = vec![0u32; n];
                let mut b1 = vec![0u32; n];
                let (lo1, ro1) = partition_iota_with(lvl, &col, t, &mut a1, &mut b1);
                assert_eq!((lo0, ro0), (lo1, ro1), "{lvl:?} n={n}");
                assert_eq!(a0[..lo0], a1[..lo1], "{lvl:?} n={n} left");
                assert_eq!(b0[..ro0], b1[..ro1], "{lvl:?} n={n} right");
                assert_eq!(lo0 + ro0, n);
            }
        }
    }

    #[test]
    fn every_tier_matches_scalar_seg() {
        for lvl in Level::all().iter().copied().filter(|l| l.available()) {
            let col = column(64);
            // A shuffled, repeating segment exercises gather ordering.
            let seg: Vec<u32> = (0..41u32).map(|i| (i * 29 + 7) % 64).collect();
            for t in [0.0, -2.0, f64::INFINITY, 55.5] {
                let mut a0 = vec![0u32; seg.len()];
                let mut b0 = vec![0u32; seg.len()];
                let (lo0, ro0) = partition_seg_with(Level::Scalar, &col, t, &seg, &mut a0, &mut b0);
                let mut a1 = vec![0u32; seg.len()];
                let mut b1 = vec![0u32; seg.len()];
                let (lo1, ro1) = partition_seg_with(lvl, &col, t, &seg, &mut a1, &mut b1);
                assert_eq!((lo0, ro0), (lo1, ro1), "{lvl:?} t={t}");
                assert_eq!(a0[..lo0], a1[..lo1], "{lvl:?} t={t} left");
                assert_eq!(b0[..ro0], b1[..ro1], "{lvl:?} t={t} right");
            }
        }
    }

    #[test]
    #[should_panic(expected = "partition buffers shorter")]
    fn short_buffers_panic() {
        let col = [1.0f64; 8];
        let mut a = [0u32; 4];
        let mut b = [0u32; 8];
        partition_iota(&col, 0.5, &mut a, &mut b);
    }

    #[test]
    #[should_panic(expected = "segment row out of bounds")]
    fn out_of_bounds_segment_panics_on_vector_tiers() {
        // Only meaningful where Avx2 exists; elsewhere the scalar sweep
        // panics with the slice bounds message, so gate the expectation.
        if !Level::Avx2.available() {
            panic!("segment row out of bounds (tier unavailable, matching expectation)");
        }
        let col = [1.0f64; 8];
        let seg = [0u32, 1, 2, 3, 4, 5, 6, 99];
        let mut a = [0u32; 8];
        let mut b = [0u32; 8];
        partition_seg_with(Level::Avx2, &col, 0.5, &seg, &mut a, &mut b);
    }
}
