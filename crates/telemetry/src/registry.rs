//! The process-wide metric registry and the global on/off switch.

use crate::metrics::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Collection instrumentation writes into and exporters read from.
///
/// Metrics are keyed by dotted names (`<crate>.<subsystem>.<name>`, see
/// DESIGN.md) and created on first use. The maps are `BTreeMap`s so every
/// export walks names in stable sorted order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses
    /// [`crate::registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histogram snapshots, sorted by name.
    pub fn histograms(&self) -> Vec<(String, crate::HistogramSnapshot)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Drops every metric. Meant for test isolation; handles cached by
    /// call sites keep updating their detached atomics harmlessly.
    pub fn clear(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Whether instrumentation records anything. Start enabled: the cost of
/// live metrics is the point of having them (and the overhead bench
/// bounds it).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Turns recording on or off process-wide. Lookups still succeed while
/// disabled; writes become no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when instrumentation records.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
