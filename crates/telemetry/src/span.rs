//! RAII span timers with a per-thread active-span stack.
//!
//! A span measures one timed region; dropping the guard records the
//! elapsed milliseconds into the histogram `<name>.ms`. Guards nest:
//! each thread keeps a stack of active span names, so
//! [`active_spans`] shows where that thread currently is (e.g.
//! `["pipeline.run", "auction.run"]`) and exit order is enforced to be
//! LIFO per thread.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A running span; records on drop.
///
/// Hold it in a named binding (`let _span = ...`) — binding to `_`
/// drops immediately and times nothing.
#[derive(Debug)]
#[must_use = "binding to _ drops the guard immediately and times nothing"]
pub struct Span {
    name: Option<String>,
    start: Instant,
}

/// Starts a span named `name`. Prefer the [`crate::span!`] macro at call
/// sites.
pub fn start_span(name: impl Into<String>) -> Span {
    if !crate::enabled() {
        return Span {
            name: None,
            start: Instant::now(),
        };
    }
    let name = name.into();
    STACK.with(|s| s.borrow_mut().push(name.clone()));
    Span {
        name: Some(name),
        start: Instant::now(),
    }
}

impl Span {
    /// Elapsed time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        let elapsed = self.elapsed_ms();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&name), "span guards must drop LIFO");
            if stack.last() == Some(&name) {
                stack.pop();
            }
        });
        crate::registry()
            .histogram(&format!("{name}.ms"))
            .observe(elapsed);
    }
}

/// The current thread's active span names, outermost first.
pub fn active_spans() -> Vec<String> {
    STACK.with(|s| s.borrow().clone())
}

/// Starts an RAII span timer: `let _span = span!("auction.run");`.
///
/// On drop the elapsed milliseconds land in the histogram
/// `<name>.ms`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::start_span($name)
    };
}
