//! The three metric primitives: counters, gauges and log-bucketed
//! histograms.
//!
//! Everything here is lock-free on the hot path: counters and gauges are
//! single atomics, histograms a fixed array of atomic buckets. Handles
//! are cheap `Arc` clones, so call sites may either look a metric up by
//! name on every event (one `RwLock` read + map lookup) or cache the
//! handle once and pay only the atomic op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.inner.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (compare-and-swap loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per power of two. Width `2^(1/8)` bounds the relative
/// quantile error at about 9 % (4.5 % against the geometric midpoint).
const SUB: usize = 8;
/// Lowest representable octave: `2^-24` (≈ 6e-8).
const MIN_EXP: i32 = -24;
/// One past the highest octave: `2^40` (≈ 1.1e12).
const MAX_EXP: i32 = 40;
/// Total log buckets.
const BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB;

/// A histogram over positive values with logarithmic buckets.
///
/// Values at or below zero (and NaN) land in a dedicated underflow
/// bucket and count toward `count` but not the quantiles. Quantiles are
/// read from the bucket geometry, so `p50`/`p90`/`p99` carry a bounded
/// ~5 % relative error; `min`/`max`/`sum` are exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    underflow: AtomicU64,
    count: AtomicU64,
    /// Exact running sum, as f64 bits.
    sum_bits: AtomicU64,
    /// Exact extrema, as f64 bits (positive floats order like their bits).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

fn bucket_index(value: f64) -> usize {
    let pos = (value.log2() - MIN_EXP as f64) * SUB as f64;
    if pos < 0.0 {
        0
    } else {
        (pos as usize).min(BUCKETS - 1)
    }
}

/// Geometric midpoint of bucket `i` — the representative value quantile
/// reads return.
fn bucket_mid(i: usize) -> f64 {
    ((i as f64 + 0.5) / SUB as f64 + MIN_EXP as f64).exp2()
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramCore {
                buckets: buckets.into_boxed_slice(),
                underflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                // Positive floats order like their bit patterns, so
                // `fetch_min`/`fetch_max` on the bits implement exact
                // extrema. `+inf` bounds min from above; `+0.0` (all-zero
                // bits) bounds max from below — `-inf` would not, its
                // sign bit makes it the *largest* u64.
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let core = &*self.inner;
        core.count.fetch_add(1, Ordering::Relaxed);
        if value.is_nan() || value <= 0.0 {
            core.underflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Exact sum via CAS (histogram writes are far rarer than counter
        // bumps; contention here is negligible).
        let mut seen = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(seen) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                seen,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
        core.min_bits.fetch_min(value.to_bits(), Ordering::Relaxed);
        core.max_bits.fetch_max(value.to_bits(), Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Starts an RAII timer recording elapsed **microseconds** into this
    /// histogram on drop — the hot-path counterpart of [`crate::span!`]:
    /// no name allocation, no span-stack push, just the pre-resolved
    /// handle and one `Instant` read. Hold it in a named binding;
    /// binding to `_` drops immediately and times nothing.
    pub fn time_us(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: Instant::now(),
            per_second: 1e6,
        }
    }

    /// Like [`Histogram::time_us`], recording **milliseconds**.
    pub fn time_ms(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: Instant::now(),
            per_second: 1e3,
        }
    }

    /// The non-empty log buckets as `(geometric midpoint, cumulative
    /// count)` pairs, midpoints ascending.
    ///
    /// Counts are cumulative since process start, like every other
    /// metric read; rolling-window consumers (the `yav-trace` health
    /// engine) difference successive calls to recover per-window
    /// distributions. The underflow bucket is excluded, matching the
    /// quantile semantics of [`Histogram::snapshot`].
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_mid(i), c))
            })
            .collect()
    }

    /// A point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.inner;
        let counts: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let positive: u64 = counts.iter().sum();
        let min = f64::from_bits(core.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(core.max_bits.load(Ordering::Relaxed));
        // Bucket midpoints can overshoot the true extrema by the bucket
        // error; the exact min/max bound them back so a snapshot never
        // reports p99 > max (or p50 < min). A snapshot can race an
        // observation's extrema writes and briefly see min > max — skip
        // the bound then (clamp would panic).
        let bound = |v: f64| if min <= max { v.clamp(min, max) } else { v };
        let quantile = |q: f64| -> f64 {
            if positive == 0 {
                return f64::NAN;
            }
            let target = ((q * positive as f64).ceil() as u64).clamp(1, positive);
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cumulative += c;
                if cumulative >= target {
                    return bound(bucket_mid(i));
                }
            }
            bound(bucket_mid(BUCKETS - 1))
        };
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            underflow: core.underflow.load(Ordering::Relaxed),
            sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
            min: if positive > 0 { min } else { f64::NAN },
            max: if positive > 0 { max } else { f64::NAN },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// An RAII guard from [`Histogram::time_us`]/[`Histogram::time_ms`];
/// records the elapsed time into its histogram when dropped. The
/// observation respects the process-wide kill switch at drop time, like
/// every other write.
#[derive(Debug)]
#[must_use = "binding to _ drops the timer immediately and times nothing"]
pub struct HistogramTimer {
    hist: Histogram,
    start: Instant,
    per_second: f64,
}

impl HistogramTimer {
    /// Elapsed time so far, in the timer's unit.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * self.per_second
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.observe(self.elapsed());
    }
}

/// A frozen view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations (including underflow).
    pub count: u64,
    /// Observations at or below zero (or NaN), excluded from quantiles.
    pub underflow: u64,
    /// Exact sum of positive observations.
    pub sum: f64,
    /// Exact minimum positive observation (NaN when empty).
    pub min: f64,
    /// Exact maximum positive observation (NaN when empty).
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_monotone() {
        let mut last = 0.0;
        for i in 0..BUCKETS {
            let mid = bucket_mid(i);
            assert!(mid > last);
            last = mid;
            assert_eq!(bucket_index(mid), i, "midpoint must index its own bucket");
        }
    }

    #[test]
    fn histogram_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let t = h.time_us();
            assert!(t.elapsed() >= 0.0);
        }
        {
            let _t = h.time_ms();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        // Sub-nanosecond regions can legally round to 0.0 (underflow
        // bucket); everything else must be positive.
        assert!(s.count == s.underflow + 2 || s.max > 0.0);
    }

    #[test]
    fn extremes_clamp_instead_of_panicking() {
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        let h = Histogram::new();
        h.observe(f64::INFINITY);
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.underflow, 3);
    }
}
