//! Exporters: Prometheus text format, a JSON snapshot, and a human
//! report.
//!
//! The JSON writer is deliberately hand-rolled: this crate takes no
//! serialization dependency so that instrumenting a leaf crate (e.g.
//! `yav-nurl`) never widens its dependency tree.

use crate::registry::Registry;
use crate::HistogramSnapshot;
use std::fmt::Write;

/// Converts a dotted metric name to a Prometheus metric name:
/// `yav_` prefix, every non-alphanumeric byte folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("yav_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Renders a registry in the Prometheus text exposition format.
/// Histograms export as summaries (quantile series plus `_sum`,
/// `_count`).
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let p = prom_name(&name);
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, value) in registry.gauges() {
        let p = prom_name(&name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {}", prom_value(value));
    }
    for (name, snap) in registry.histograms() {
        let p = prom_name(&name);
        let _ = writeln!(out, "# TYPE {p} summary");
        for (q, v) in [(0.5, snap.p50), (0.9, snap.p90), (0.99, snap.p99)] {
            let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {}", prom_value(v));
        }
        let _ = writeln!(out, "{p}_sum {}", prom_value(snap.sum));
        let _ = writeln!(out, "{p}_count {}", snap.count);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON numbers have no NaN/Inf; follow serde_json and emit `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_histogram(s: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"underflow\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        s.count,
        s.underflow,
        json_num(s.sum),
        json_num(s.min),
        json_num(s.max),
        json_num(s.p50),
        json_num(s.p90),
        json_num(s.p99),
    )
}

/// Renders a registry as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}` with names
/// sorted inside each section.
pub fn json_snapshot(registry: &Registry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in registry.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{value}", json_escape(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in registry.gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), json_num(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, snap)) in registry.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), json_histogram(snap));
    }
    out.push_str("}}");
    out
}

/// Renders a registry as an aligned human-readable report.
pub fn report(registry: &Registry) -> String {
    let counters = registry.counters();
    let gauges = registry.gauges();
    let histograms = registry.histograms();
    let width = counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(gauges.iter().map(|(n, _)| n.len()))
        .chain(histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0)
        .max(8);

    let mut out = String::from("telemetry report\n");
    if !counters.is_empty() {
        out.push_str("  counters:\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "    {name:<width$}  {value}");
        }
    }
    if !gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (name, value) in &gauges {
            let _ = writeln!(out, "    {name:<width$}  {value:.4}");
        }
    }
    if !histograms.is_empty() {
        out.push_str("  histograms:\n");
        for (name, s) in &histograms {
            let _ = writeln!(
                out,
                "    {name:<width$}  n={} p50={:.3} p90={:.3} p99={:.3} max={:.3} sum={:.3}",
                s.count, s.p50, s.p90, s.p99, s.max, s.sum
            );
        }
    }
    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() {
        out.push_str("  (no metrics recorded)\n");
    }
    out
}
