//! Lightweight process-wide telemetry for the your-ad-value pipeline.
//!
//! One [`Registry`] holds named [`Counter`]s, [`Gauge`]s and
//! log-bucketed [`Histogram`]s (p50/p90/p99/max). RAII [`Span`] timers
//! measure regions and nest via a per-thread active-span stack.
//! Exporters render the registry as Prometheus text, a JSON snapshot or
//! a human report.
//!
//! Metric names follow `<crate>.<subsystem>.<name>` (see DESIGN.md,
//! "Telemetry"). Instrumentation is on by default and can be switched
//! off process-wide with [`set_enabled`] — the overhead benchmark in
//! `crates/bench` measures exactly that delta.
//!
//! ```
//! use yav_telemetry as telemetry;
//!
//! telemetry::counter("auction.runs").inc();
//! {
//!     let _span = telemetry::span!("auction.run");
//!     telemetry::histogram("auction.charge_cpm").observe(1.25);
//! }
//! assert!(telemetry::prometheus_text().contains("yav_auction_runs 1"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod export;
mod metrics;
mod registry;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer};
pub use registry::{enabled, registry, set_enabled, Registry};
pub use span::{active_spans, start_span, Span};

/// The global counter named `name` (created on first use).
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// The global gauge named `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// The global histogram named `name` (created on first use).
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// The global registry in Prometheus text exposition format.
pub fn prometheus_text() -> String {
    export::prometheus_text(registry())
}

/// The global registry as one JSON object.
pub fn json_snapshot() -> String {
    export::json_snapshot(registry())
}

/// The global registry as a human-readable report.
pub fn report() -> String {
    export::report(registry())
}

/// Renders any registry (not just the global one) as Prometheus text.
pub fn prometheus_text_of(registry: &Registry) -> String {
    export::prometheus_text(registry)
}

/// Renders any registry as a JSON snapshot.
pub fn json_snapshot_of(registry: &Registry) -> String {
    export::json_snapshot(registry)
}

/// Renders any registry as a human report.
pub fn report_of(registry: &Registry) -> String {
    export::report(registry)
}

/// The process's peak resident set size (high-water mark) in bytes.
///
/// Reads `VmHWM` from `/proc/self/status`, so it is Linux-only and
/// returns `None` elsewhere. The value is monotone over the process
/// lifetime: benchmarks that report it must run their measurements in
/// ascending memory order.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}
