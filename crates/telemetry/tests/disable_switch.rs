//! The global on/off switch, in its own test binary: toggling the
//! process-wide flag would race the other integration tests.

use yav_telemetry as telemetry;

#[test]
fn disabling_telemetry_stops_recording() {
    let counter = telemetry::counter("switch.counter");
    counter.inc();
    telemetry::set_enabled(false);
    counter.inc();
    telemetry::counter("switch.counter").inc();
    telemetry::histogram("switch.h").observe(1.0);
    {
        let _span = telemetry::span!("switch.span");
        assert!(telemetry::active_spans().is_empty());
    }
    telemetry::set_enabled(true);
    counter.inc();
    assert_eq!(counter.get(), 2);
    assert_eq!(telemetry::histogram("switch.h").count(), 0);
    assert_eq!(telemetry::histogram("switch.span.ms").count(), 0);
}
