//! Integration tests: quantile accuracy against an exact reference,
//! concurrent writers, span nesting and exporter output shape.
//!
//! Tests in this binary share the process-global registry, so each test
//! uses its own metric-name prefix.

use yav_telemetry as telemetry;

/// A tiny deterministic generator (SplitMix64) — no rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[test]
fn histogram_quantiles_track_exact_reference() {
    let registry = telemetry::Registry::new();
    let h = registry.histogram("q.accuracy");
    let mut rng = Rng(7);
    // Log-normal-ish spread: the shape charge prices actually have.
    let samples: Vec<f64> = (0..10_000)
        .map(|_| {
            let n = (0..12).map(|_| rng.f64()).sum::<f64>() - 6.0; // ~N(0,1)
            (0.4 + 1.1 * n).exp()
        })
        .collect();
    for &s in &samples {
        h.observe(s);
    }

    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let exact =
        |q: f64| sorted[((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];

    let snap = h.snapshot();
    for (estimate, q) in [(snap.p50, 0.50), (snap.p90, 0.90), (snap.p99, 0.99)] {
        let truth = exact(q);
        let rel = (estimate - truth).abs() / truth;
        // Bucket width is 2^(1/8) ≈ 9 %, and the estimate is the bucket's
        // geometric midpoint, so the error is bounded by ~4.5 %.
        assert!(
            rel < 0.05,
            "p{} estimate {estimate} vs exact {truth} (rel {rel:.4})",
            q * 100.0
        );
    }
    assert_eq!(snap.count, 10_000);
    assert_eq!(snap.min, *sorted.first().unwrap());
    assert_eq!(snap.max, *sorted.last().unwrap());
    let exact_sum: f64 = samples.iter().sum();
    assert!((snap.sum - exact_sum).abs() / exact_sum < 1e-9);
}

#[test]
fn counters_and_gauges_survive_concurrent_writers() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let counter = telemetry::counter("conc.counter");
    let gauge = telemetry::gauge("conc.gauge");
    let histogram = telemetry::histogram("conc.histogram");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                // Mix cached-handle and by-name lookups: both paths are
                // what instrumented code does in practice.
                for i in 0..PER_THREAD {
                    counter.inc();
                    telemetry::counter("conc.counter_by_name").inc();
                    gauge.add(1.0);
                    if i % 64 == 0 {
                        histogram.observe(1.0 + (i % 7) as f64);
                    }
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(
        telemetry::counter("conc.counter_by_name").get(),
        THREADS * PER_THREAD
    );
    assert_eq!(gauge.get(), (THREADS * PER_THREAD) as f64);
    assert_eq!(histogram.count(), THREADS * (PER_THREAD / 64 + 1));
}

#[test]
fn spans_nest_and_unwind_in_order() {
    assert!(telemetry::active_spans().is_empty());
    {
        let _outer = telemetry::span!("nest.outer");
        assert_eq!(telemetry::active_spans(), ["nest.outer"]);
        {
            let _inner = telemetry::span!("nest.inner");
            assert_eq!(telemetry::active_spans(), ["nest.outer", "nest.inner"]);
        }
        assert_eq!(telemetry::active_spans(), ["nest.outer"]);
    }
    assert!(telemetry::active_spans().is_empty());
    // Both spans recorded a duration histogram on drop.
    assert_eq!(telemetry::histogram("nest.outer.ms").count(), 1);
    assert_eq!(telemetry::histogram("nest.inner.ms").count(), 1);
    // Spans on another thread get their own stack.
    let _outer = telemetry::span!("nest.main");
    std::thread::spawn(|| assert!(telemetry::active_spans().is_empty()))
        .join()
        .unwrap();
}

#[test]
fn prometheus_text_has_the_exposition_shape() {
    let registry = telemetry::Registry::new();
    registry.counter("prom.events").add(3);
    registry.gauge("prom.drift").set(-0.25);
    let h = registry.histogram("prom.latency_ms");
    for v in [1.0, 2.0, 4.0] {
        h.observe(v);
    }

    let text = telemetry::prometheus_text_of(&registry);
    let lines: Vec<&str> = text.lines().collect();
    // Counter: TYPE header immediately followed by the sample.
    let i = lines
        .iter()
        .position(|l| *l == "# TYPE yav_prom_events counter")
        .unwrap();
    assert_eq!(lines[i + 1], "yav_prom_events 3");
    let g = lines
        .iter()
        .position(|l| *l == "# TYPE yav_prom_drift gauge")
        .unwrap();
    assert_eq!(lines[g + 1], "yav_prom_drift -0.25");
    // Histogram exports as a summary with quantiles, sum and count.
    assert!(lines.contains(&"# TYPE yav_prom_latency_ms summary"));
    assert!(text.contains("yav_prom_latency_ms{quantile=\"0.5\"} "));
    assert!(text.contains("yav_prom_latency_ms{quantile=\"0.9\"} "));
    assert!(text.contains("yav_prom_latency_ms{quantile=\"0.99\"} "));
    assert!(text.contains("yav_prom_latency_ms_sum 7"));
    assert!(text.contains("yav_prom_latency_ms_count 3"));
    // Every non-comment line is `name[{labels}] value`.
    for line in &lines {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap();
        assert!(name.starts_with("yav_"), "bad metric name in {line:?}");
        assert!(
            value == "NaN" || value.parse::<f64>().is_ok(),
            "bad sample value in {line:?}"
        );
    }
}

#[test]
fn json_snapshot_is_valid_and_complete() {
    let registry = telemetry::Registry::new();
    registry.counter("json.seen").inc();
    registry.gauge("json.level").set(2.5);
    registry.histogram("json.sizes").observe(10.0);
    let json = telemetry::json_snapshot_of(&registry);
    assert!(json.contains("\"json.seen\":1"));
    assert!(json.contains("\"json.level\":2.5"));
    assert!(json.contains("\"json.sizes\":{\"count\":1,"));
    // Empty histogram extrema serialize as null, never NaN.
    registry.histogram("json.empty");
    let json = telemetry::json_snapshot_of(&registry);
    assert!(json.contains("\"json.empty\":{\"count\":0,\"underflow\":0,\"sum\":0,\"min\":null"));
    assert!(!json.contains("NaN"));
}
