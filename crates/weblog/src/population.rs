//! The user panel: 1 594 volunteers and their behavioural parameters.
//!
//! Each panelist gets a home city (population-weighted across the ten
//! Figure-5 locations), a device (OS market shares per Figure 8: Android
//! roughly 2× iOS in auction volume), an activity level (log-normal —
//! some users browse constantly), an app-vs-web propensity, and a small
//! weighted interest profile over IAB categories that steers which
//! publishers they visit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yav_types::{City, DeviceType, IabCategory, Os, UserId};

/// One panel user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelUser {
    /// Identifier.
    pub id: UserId,
    /// Home city.
    pub home: City,
    /// Device operating system.
    pub os: Os,
    /// Device hardware class (smartphone or tablet — the panel is mobile).
    pub device: DeviceType,
    /// Multiplier on daily view volume (log-normal, median 1).
    pub activity: f64,
    /// Probability a view happens inside a native app rather than the
    /// mobile web.
    pub app_propensity: f64,
    /// Interest profile: up to four categories with weights summing ≤ 1.
    pub interests: Vec<(IabCategory, f64)>,
    /// Probability a session happens away from the home city.
    pub mobility: f64,
}

impl PanelUser {
    /// The user-agent string this user's device emits for *web* requests.
    pub fn web_user_agent(&self) -> String {
        let mut out = String::new();
        self.write_web_user_agent(&mut out);
        out
    }

    /// Appends the web user-agent to `buf` without allocating — the form
    /// the generator uses to pre-render one UA per user per shard.
    pub fn write_web_user_agent(&self, buf: &mut String) {
        use std::fmt::Write as _;
        match self.os {
            Os::Android => {
                let _ = write!(
                    buf,
                    "Mozilla/5.0 (Linux; Android 5.1; SM-G{}00 Build/LMY47X) AppleWebKit/537.36 Chrome/43.0 Mobile Safari/537.36",
                    900 + self.id.0 % 30
                );
            }
            Os::Ios => {
                let hardware = if self.device == DeviceType::Tablet {
                    "iPad;"
                } else {
                    "iPhone;"
                };
                let _ = write!(
                    buf,
                    "Mozilla/5.0 ({hardware} CPU iPhone OS 8_{} like Mac OS X) AppleWebKit/600.1 Version/8.0 Mobile Safari/600.1",
                    1 + self.id.0 % 4
                );
            }
            Os::WindowsMobile => buf.push_str(
                "Mozilla/5.0 (Windows Phone 8.1; ARM; Trident/7.0; IEMobile/11.0) like Gecko",
            ),
            Os::Other => buf.push_str("Mozilla/5.0 (Mobile; rv:34.0) Gecko/34.0 Firefox/34.0"),
        }
    }

    /// The user-agent string for *in-app* requests (process VMs leak
    /// through, §4.3: Dalvik on Android, Darwin/CFNetwork on iOS).
    pub fn app_user_agent(&self) -> String {
        let mut out = String::new();
        self.write_app_user_agent(&mut out);
        out
    }

    /// Appends the in-app user-agent to `buf` without allocating.
    pub fn write_app_user_agent(&self, buf: &mut String) {
        use std::fmt::Write as _;
        match self.os {
            Os::Android => {
                let _ = write!(
                    buf,
                    "Dalvik/2.1.0 (Linux; U; Android 5.1; SM-G{}00)",
                    900 + self.id.0 % 30
                );
            }
            Os::Ios => {
                let _ = write!(buf, "App/{} CFNetwork/711.3 Darwin/14.0.0", 1 + self.id.0 % 9);
            }
            Os::WindowsMobile => buf.push_str("WindowsPhoneApp/8.1 NativeHost"),
            Os::Other => buf.push_str("GenericMobileApp/1.0"),
        }
    }

    /// Interest categories only (for publisher affinity sampling).
    pub fn interest_categories(&self) -> Vec<IabCategory> {
        self.interests.iter().map(|&(c, _)| c).collect()
    }

    /// Interest categories into a fixed buffer (profiles carry at most
    /// four): the allocation-free twin of
    /// [`PanelUser::interest_categories`]. Returns the filled prefix.
    pub fn interest_categories_into<'a>(
        &self,
        buf: &'a mut [IabCategory; 4],
    ) -> &'a [IabCategory] {
        let n = self.interests.len().min(4);
        for (slot, &(c, _)) in buf.iter_mut().zip(self.interests.iter()) {
            *slot = c;
        }
        &buf[..n]
    }

    /// The weight of one category in this user's profile (0 if absent).
    pub fn interest_weight(&self, iab: IabCategory) -> f64 {
        self.interests
            .iter()
            .find(|&&(c, _)| c == iab)
            .map(|&(_, w)| w)
            .unwrap_or(0.0)
    }
}

/// The whole panel.
#[derive(Debug, Clone)]
pub struct Panel {
    users: Vec<PanelUser>,
}

impl Panel {
    /// Builds a deterministic panel of `n` users.
    pub fn build(seed: u64, n: u32) -> Panel {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A9E_0000_0000_0005);
        let users = (0..n)
            .map(|i| Self::draw_user(&mut rng, UserId(i)))
            .collect();
        Panel { users }
    }

    /// Builds only the users `[lo, hi)` of a *lazy* panel. Unlike
    /// [`Panel::build`] — whose draws are sequential, so user `i` depends
    /// on every draw before it — each lazy user gets an independent RNG
    /// derived from `(seed, id)`. Any block can therefore be materialised
    /// on demand in O(block) memory: the million-user streaming pipeline
    /// builds each 32-user shard block, plays it, and drops it. The two
    /// derivations produce *different* (equally valid) panels; lazy mode
    /// is only used at scales where the eager panel would not fit.
    pub fn build_block(seed: u64, lo: u32, hi: u32) -> Vec<PanelUser> {
        (lo..hi)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(yav_exec::derive_seed(
                    seed ^ 0x9A9E_0000_0000_0015,
                    i as u64,
                ));
                Self::draw_user(&mut rng, UserId(i))
            })
            .collect()
    }

    fn draw_user(rng: &mut StdRng, id: UserId) -> PanelUser {
        // Home city: population-weighted, O(1) via a shared alias table
        // (one uniform per draw, same budget as the old CDF walk).
        static CITY_TABLE: std::sync::OnceLock<yav_stats::AliasTable> =
            std::sync::OnceLock::new();
        let table = CITY_TABLE.get_or_init(|| {
            let pops: Vec<f64> = City::ALL.iter().map(|c| c.population() as f64).collect();
            yav_stats::AliasTable::new(&pops)
        });
        let home = City::ALL[table.sample(rng)];

        // OS market shares (Fig. 8: Android ≈2× iOS in volume).
        let os = match rng.gen::<f64>() {
            x if x < 0.60 => Os::Android,
            x if x < 0.90 => Os::Ios,
            x if x < 0.96 => Os::WindowsMobile,
            _ => Os::Other,
        };
        let device = if rng.gen::<f64>() < 0.15 {
            DeviceType::Tablet
        } else {
            DeviceType::Smartphone
        };

        // Log-normal activity, median 1, a few heavy browsers.
        let activity = (0.6 * crate::generator::normal(rng)).exp();

        // iOS users skew slightly more app-bound (a 2015 market pattern);
        // everyone spends most ad-eligible time in apps.
        let app_propensity =
            (0.55 + 0.12 * rng.gen::<f64>() + if os == Os::Ios { 0.05 } else { 0.0 })
                .clamp(0.0, 0.9);

        // 2–4 interests, Dirichlet-ish weights.
        let k = rng.gen_range(2..=4usize);
        let mut cats = Vec::with_capacity(k);
        while cats.len() < k {
            let c = IabCategory::ALL[rng.gen_range(0..IabCategory::ALL.len())];
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        let mut raw: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() + 0.2).collect();
        let sum: f64 = raw.iter().sum();
        raw.iter_mut().for_each(|w| *w /= sum);
        let interests = cats.into_iter().zip(raw).collect();

        PanelUser {
            id,
            home,
            os,
            device,
            activity,
            app_propensity,
            interests,
            mobility: 0.04 + 0.10 * rng.gen::<f64>(),
        }
    }

    /// All users.
    pub fn users(&self) -> &[PanelUser] {
        &self.users
    }

    /// Looks a user up.
    pub fn get(&self, id: UserId) -> Option<&PanelUser> {
        self.users.get(id.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_deterministic() {
        let a = Panel::build(7, 100);
        let b = Panel::build(7, 100);
        assert_eq!(a.users(), b.users());
        assert_eq!(a.users().len(), 100);
    }

    #[test]
    fn lazy_blocks_tile_consistently() {
        // A block materialised twice is identical, and adjacent blocks
        // tile into the same users a wider block produces — the property
        // the sharded streaming generator relies on.
        let a = Panel::build_block(7, 0, 64);
        let lo = Panel::build_block(7, 0, 32);
        let hi = Panel::build_block(7, 32, 64);
        assert_eq!(a[..32], lo[..]);
        assert_eq!(a[32..], hi[..]);
        assert_eq!(Panel::build_block(7, 32, 64), hi);
        for (i, u) in a.iter().enumerate() {
            assert_eq!(u.id, UserId(i as u32));
        }
        // Lazy users still look like panel users (shares spot-check).
        let p = Panel::build_block(1, 0, 5000);
        let android = p.iter().filter(|u| u.os == Os::Android).count() as f64 / 5000.0;
        assert!((android - 0.60).abs() < 0.03, "android share {android}");
    }

    #[test]
    fn os_shares_near_market() {
        let p = Panel::build(1, 5000);
        let share = |os: Os| p.users().iter().filter(|u| u.os == os).count() as f64 / 5000.0;
        assert!((share(Os::Android) - 0.60).abs() < 0.03);
        assert!((share(Os::Ios) - 0.30).abs() < 0.03);
        assert!(share(Os::Android) > 1.6 * share(Os::Ios));
    }

    #[test]
    fn cities_population_weighted() {
        let p = Panel::build(2, 5000);
        let madrid = p.users().iter().filter(|u| u.home == City::Madrid).count();
        let torello = p.users().iter().filter(|u| u.home == City::Torello).count();
        assert!(
            madrid > 30 * torello.max(1),
            "madrid {madrid} torello {torello}"
        );
    }

    #[test]
    fn user_agents_leak_the_right_fingerprints() {
        let p = Panel::build(3, 200);
        for u in p.users() {
            let web = u.web_user_agent();
            let app = u.app_user_agent();
            match u.os {
                Os::Android => {
                    assert!(web.contains("Android"));
                    assert!(app.contains("Dalvik"));
                }
                Os::Ios => {
                    assert!(web.contains("like Mac OS X"));
                    assert!(app.contains("Darwin"));
                }
                Os::WindowsMobile => assert!(web.contains("Windows Phone")),
                Os::Other => assert!(web.contains("Mobile")),
            }
            if u.device == DeviceType::Tablet && u.os == Os::Ios {
                assert!(web.contains("iPad"));
            }
        }
    }

    #[test]
    fn interests_are_weighted_profiles() {
        let p = Panel::build(4, 300);
        for u in p.users() {
            assert!((2..=4).contains(&u.interests.len()));
            let sum: f64 = u.interests.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            for &(c, w) in &u.interests {
                assert!(w > 0.0);
                assert_eq!(u.interest_weight(c), w);
            }
        }
    }

    #[test]
    fn activity_is_heterogeneous() {
        let p = Panel::build(5, 2000);
        let acts: Vec<f64> = p.users().iter().map(|u| u.activity).collect();
        let max = acts.iter().cloned().fold(f64::MIN, f64::max);
        let min = acts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 5.0, "activity spread {min}..{max}");
    }
}
