//! The browsing/session model: turning the panel into an HTTP stream.
//!
//! For every user-day the generator draws sessions (diurnal and weekly
//! rhythms), pages per session, publisher choices (interest-biased Zipf),
//! auxiliary asset/tracker/beacon requests, occasional cookie syncs, and
//! RTB ad slots that are auctioned live through a [`yav_auction::Market`].
//! Sold slots emit the exchange's ad response plus the notification URL —
//! the thing the whole pipeline exists to observe.
//!
//! Events are streamed to a visitor in strict time order *within each
//! user-day* (global order is user-major, which is what a proxy log
//! sorted by subscriber looks like; consumers needing global time order
//! sort downstream).

use crate::config::WeblogConfig;
use crate::domains;
use crate::event::{GroundTruth, HttpRequest};
use crate::population::{Panel, PanelUser};
use crate::publisher::{sample_slot, Publisher, PublisherUniverse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::OnceLock;
use yav_arena::{Bump, Span};
use yav_auction::{AdRequest, Market, MarketConfig};
use yav_stats::AliasTable;
use yav_types::{
    AdSlotSize, Adx, City, DeviceType, IabCategory, InteractionType, Os, PublisherId, SimTime,
    UserId,
};

/// Users per logical generation shard. This is a **structural** constant:
/// the canonical parallel stream depends on the shard cut (each shard
/// auctions against its own derived market), so it must never be derived
/// from the worker count. 32 users keeps shards coarse enough to amortise
/// market setup yet fine enough to balance a 16-wide pool at Mid scale.
pub const USERS_PER_SHARD: usize = 32;

/// One standard-normal draw (Box–Muller). Shared with the population
/// model.
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Relative browsing intensity per hour of day (sums to 24; the morning
/// and evening humps of mobile usage).
const HOURLY: [f64; 24] = [
    0.25, 0.15, 0.10, 0.08, 0.10, 0.20, 0.55, 0.95, 1.30, 1.45, 1.40, 1.30, //
    1.25, 1.20, 1.15, 1.20, 1.30, 1.45, 1.60, 1.75, 1.80, 1.60, 1.15, 0.72,
];

/// Weekly modulation (weekends browse a bit more, workdays a bit less).
const DAILY: [f64; 7] = [0.95, 0.95, 0.95, 0.97, 1.00, 1.12, 1.06];

/// A fully collected weblog (use only at test scales).
#[derive(Debug, Clone, Default)]
pub struct Weblog {
    /// The HTTP event stream.
    pub requests: Vec<HttpRequest>,
    /// Ground-truth impression records (validation only).
    pub truth: Vec<GroundTruth>,
}

impl Weblog {
    /// Sorts both streams into the canonical global order: minute, then
    /// user id, ties keeping their per-user emission order (the sort is
    /// stable). This is the merge order of the parallel pipeline; shard
    /// boundaries can never show through it.
    pub fn sort_canonical(&mut self) {
        self.requests.sort_by_key(|r| (r.time.minutes(), r.user.0));
        self.truth.sort_by_key(|t| (t.time.minutes(), t.user.0));
    }
}

/// Reusable per-shard buffers for the steady-state event loop. One
/// [`HttpRequest`] and one [`AdRequest`] are written in place and lent to
/// the sinks; the [`Bump`] arenas intern everything textual that varies
/// only per shard (exchange ad-URL prefixes) or per user (pre-rendered
/// user-agent strings). After the first few events warm the buffer
/// capacities, the loop performs zero heap allocations per event
/// (`crates/core/tests/no_alloc_gen.rs` proves it with a counting
/// allocator).
struct ShardScratch {
    req: HttpRequest,
    ad: AdRequest,
    /// Shard-lifetime corpus: `http://{adx}/ad?pub=` per exchange.
    corpus: Bump,
    ad_prefix: [Span; Adx::ALL.len()],
    /// Per-user arena, reset at each user switch.
    ua: Bump,
    web_ua: Span,
    app_ua: Span,
    rtb_slots: yav_telemetry::Counter,
    rtb_impressions: yav_telemetry::Counter,
}

impl ShardScratch {
    fn new() -> ShardScratch {
        let mut corpus = Bump::with_capacity(1024);
        let ad_prefix = std::array::from_fn(|i| {
            corpus.push_with(|out| {
                let _ = write!(out, "http://{}/ad?pub=", Adx::from_index(i).domain());
            })
        });
        ShardScratch {
            req: HttpRequest {
                time: SimTime::EPOCH,
                user: UserId(0),
                // yav-lint: allow(alloc-in-gen-path) — per-shard scratch setup, reused for every event
                url: String::with_capacity(256),
                client_ip: 0,
                // yav-lint: allow(alloc-in-gen-path) — per-shard scratch setup, reused for every event
                user_agent: String::with_capacity(160),
                bytes: 0,
                duration_ms: 0,
            },
            ad: AdRequest {
                time: SimTime::EPOCH,
                user: UserId(0),
                city: City::Madrid,
                os: Os::Android,
                device: DeviceType::Smartphone,
                interaction: InteractionType::MobileWeb,
                publisher: PublisherId(0),
                // yav-lint: allow(alloc-in-gen-path) — per-shard scratch setup, reused for every event
                publisher_name: String::with_capacity(48),
                iab: IabCategory::News,
                slot: AdSlotSize::S300x250,
                adx: Adx::ALL[0],
                interest_match: 0.0,
            },
            corpus,
            ad_prefix,
            ua: Bump::with_capacity(256),
            web_ua: Span::EMPTY,
            app_ua: Span::EMPTY,
            rtb_slots: yav_telemetry::counter("weblog.generator.rtb_slots"),
            rtb_impressions: yav_telemetry::counter("weblog.generator.rtb_impressions"),
        }
    }
}

/// The streaming generator.
pub struct WeblogGenerator {
    config: WeblogConfig,
    /// `None` when `config.lazy_panel`: shard blocks are materialised on
    /// demand inside [`Self::run_shard`] and dropped with the shard.
    panel: Option<Panel>,
    universe: PublisherUniverse,
}

impl WeblogGenerator {
    /// Builds the generator (panel and publisher universe are derived
    /// deterministically from the config seed). With
    /// [`WeblogConfig::lazy_panel`] set, no panel is materialised here —
    /// each shard draws its own 32-user block.
    pub fn new(config: WeblogConfig) -> WeblogGenerator {
        let panel = if config.lazy_panel {
            None
        } else {
            Some(Panel::build(config.seed, config.users))
        };
        let universe =
            PublisherUniverse::build(config.seed, config.web_publishers, config.app_publishers);
        WeblogGenerator {
            config,
            panel,
            universe,
        }
    }

    /// The panel (for experiment harnesses that need user metadata).
    ///
    /// # Panics
    /// In lazy-panel mode there is no whole panel to hand out; use
    /// [`Panel::build_block`] for the block you need instead.
    pub fn panel(&self) -> &Panel {
        self.panel
            .as_ref()
            .expect("lazy_panel generators hold no materialised panel; use Panel::build_block")
    }

    /// The publisher universe.
    pub fn universe(&self) -> &PublisherUniverse {
        &self.universe
    }

    /// Number of logical generation shards (fixed blocks of
    /// [`USERS_PER_SHARD`] users in panel-id order).
    pub fn shard_count(&self) -> usize {
        (self.config.users as usize)
            .div_ceil(USERS_PER_SHARD)
            .max(1)
    }

    /// Runs the full simulation, streaming every HTTP request to `on_req`
    /// and every ground-truth impression record to `on_truth`.
    ///
    /// The request is lent, not given: it lives in a per-shard scratch
    /// buffer that the next event overwrites. Sinks that need to keep an
    /// event clone it; sinks that only read (the analyzer, the monitor)
    /// touch no heap at all.
    pub fn run(
        &self,
        market: &mut Market,
        mut on_req: impl FnMut(&HttpRequest),
        mut on_truth: impl FnMut(GroundTruth),
    ) {
        let _span = yav_telemetry::span!("weblog.generator.run");
        for shard in 0..self.shard_count() {
            self.run_shard(shard, market, &mut on_req, &mut on_truth);
        }
    }

    /// Runs one user shard against `market`. The serial [`Self::run`] is
    /// exactly the shards played in order against one market; the
    /// parallel builders give each shard its own
    /// [`Market::new_shard`]-derived market and merge downstream.
    pub fn run_shard(
        &self,
        shard: usize,
        market: &mut Market,
        on_req: impl FnMut(&HttpRequest),
        on_truth: impl FnMut(GroundTruth),
    ) {
        let n = self.config.users as usize;
        let lo = (shard * USERS_PER_SHARD).min(n);
        let hi = (lo + USERS_PER_SHARD).min(n);
        // Lazy mode draws just this shard's block and drops it with the
        // shard; eager mode borrows the shared panel (byte-compatible
        // with the pre-lazy builds).
        let block;
        let users: &[PanelUser] = match &self.panel {
            Some(panel) => &panel.users()[lo..hi],
            None => {
                block = Panel::build_block(self.config.seed, lo as u32, hi as u32);
                &block
            }
        };
        self.run_shard_with_users(users, market, on_req, on_truth);
    }

    /// Runs a shard over an explicit, already-materialised user block.
    /// Streaming drivers that have the block in hand (the million-user
    /// pipeline materialises each lazy block to size its windows) call
    /// this directly instead of [`Self::run_shard`], which would derive
    /// the block a second time.
    pub fn run_shard_with_users(
        &self,
        users: &[PanelUser],
        market: &mut Market,
        on_req: impl FnMut(&HttpRequest),
        mut on_truth: impl FnMut(GroundTruth),
    ) {
        let requests = yav_telemetry::counter("weblog.generator.requests");
        let mut inner = on_req;
        let mut on_req = move |r: &HttpRequest| {
            requests.inc();
            inner(r)
        };
        let mut scratch = ShardScratch::new();
        for user in users {
            scratch.ua.reset();
            scratch.web_ua = scratch.ua.push_with(|b| user.write_web_user_agent(b));
            scratch.app_ua = scratch.ua.push_with(|b| user.write_app_user_agent(b));
            scratch.req.user = user.id;
            scratch.ad.user = user.id;
            scratch.ad.os = user.os;
            scratch.ad.device = user.device;
            // Per-user RNG: users are independent streams, so panel size
            // changes don't reshuffle existing users' behaviour.
            let mut rng =
                StdRng::seed_from_u64(self.config.seed ^ 0x6E6E_0000_0000_0006 ^ user.id.0 as u64);
            for day in 0..self.config.days {
                let midnight = self.config.start.plus_days(day as i64);
                self.run_user_day(
                    market,
                    user,
                    midnight,
                    &mut rng,
                    &mut scratch,
                    &mut on_req,
                    &mut on_truth,
                );
            }
        }
    }

    /// Convenience: collect everything into memory (test scales only).
    pub fn collect(&self, market: &mut Market) -> Weblog {
        let mut log = Weblog::default();
        self.run(
            market,
            |r| log.requests.push(r.clone()),
            |t| log.truth.push(t),
        );
        log
    }

    /// Generates the weblog on `self.config.exec`'s worker pool: each
    /// user shard auctions against its own market derived from
    /// `(market_config.seed, shard)`, and the shard streams are merged
    /// into canonical (time, user) order. The result depends only on the
    /// configs — never on the thread count — but, because each shard owns
    /// an independent auction RNG stream, it is a *different* (equally
    /// valid) realisation than the serial [`Self::collect`] stream.
    pub fn collect_parallel(&self, market_config: &MarketConfig) -> Weblog {
        let _span = yav_telemetry::span!("exec.weblog.collect_parallel");
        let shards = self.shard_count();
        yav_telemetry::gauge("exec.weblog.shards").set(shards as f64);
        let template = yav_auction::MarketTemplate::new(market_config.clone());
        let parts = yav_exec::par_map_indexed(&self.config.exec, shards, |s| {
            let mut market = template.shard(s as u64);
            let mut log = Weblog::default();
            self.run_shard(
                s,
                &mut market,
                |r| log.requests.push(r.clone()),
                |t| log.truth.push(t),
            );
            log
        });
        let mut merged = Weblog::default();
        for part in parts {
            merged.requests.extend(part.requests);
            merged.truth.extend(part.truth);
        }
        merged.sort_canonical();
        merged
    }

    #[allow(clippy::too_many_arguments)]
    fn run_user_day(
        &self,
        market: &mut Market,
        user: &PanelUser,
        midnight: SimTime,
        rng: &mut StdRng,
        scratch: &mut ShardScratch,
        on_req: &mut impl FnMut(&HttpRequest),
        on_truth: &mut impl FnMut(GroundTruth),
    ) {
        let dow = midnight.day_of_week().index();
        let mean_views = self.config.views_per_user_day * user.activity * DAILY[dow];
        let views = poisson(rng, mean_views);
        if views == 0 {
            return;
        }
        // A "session city": travellers browse from elsewhere all day.
        let city = if rng.gen::<f64>() < user.mobility {
            City::ALL[rng.gen_range(0..City::ALL.len())]
        } else {
            user.home
        };

        let mut interest_buf = [IabCategory::News; 4];
        for _ in 0..views {
            let hour = sample_hour(rng);
            let minute = rng.gen_range(0..60i64);
            let time = midnight.plus_minutes(hour as i64 * 60 + minute);
            let in_app = rng.gen::<f64>() < user.app_propensity;
            let publisher = self.universe.sample(
                rng,
                in_app,
                user.interest_categories_into(&mut interest_buf),
                0.55,
            );
            self.emit_view(
                market, user, city, time, in_app, publisher, rng, scratch, on_req, on_truth,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_view(
        &self,
        market: &mut Market,
        user: &PanelUser,
        city: City,
        time: SimTime,
        in_app: bool,
        publisher: &Publisher,
        rng: &mut StdRng,
        scratch: &mut ShardScratch,
        on_req: &mut impl FnMut(&HttpRequest),
        on_truth: &mut impl FnMut(GroundTruth),
    ) {
        let ua = if in_app {
            scratch.app_ua
        } else {
            scratch.web_ua
        };
        scratch.req.user_agent.clear();
        scratch.req.user_agent.push_str(scratch.ua.get(ua));
        scratch.req.client_ip = city_ip(city, user.id, rng.gen::<u8>());

        // 1. The content request itself (page or app API call).
        scratch.req.url.clear();
        if in_app {
            let _ = write!(
                scratch.req.url,
                "http://api.{}/v2/feed?sess={}",
                publisher.name,
                rng.gen::<u32>()
            );
        } else {
            let _ = write!(
                scratch.req.url,
                "http://www.{}/articulo/{}.html",
                publisher.name,
                rng.gen_range(1..5000)
            );
        }
        scratch.req.time = time;
        scratch.req.bytes = rng.gen_range(8_000..160_000);
        scratch.req.duration_ms = rng.gen_range(80..900);
        on_req(&scratch.req);

        // 2. Auxiliary requests: assets, analytics, social, trackers.
        let aux = poisson(rng, self.config.aux_requests_per_view);
        for i in 0..aux {
            let t = time.plus_minutes(0).plus_minutes((i as i64) / 12); // bursts within a minute
            let roll: f64 = rng.gen();
            scratch.req.url.clear();
            if roll < 0.45 {
                let host = domains::THIRD_PARTY[rng.gen_range(0..domains::THIRD_PARTY.len())];
                let _ = write!(
                    scratch.req.url,
                    "http://{host}/assets/{}.js",
                    rng.gen_range(1..400)
                );
            } else if roll < 0.62 {
                let host = domains::ANALYTICS[rng.gen_range(0..domains::ANALYTICS.len())];
                let _ = write!(
                    scratch.req.url,
                    "http://{host}/collect?pid={}&ev=pageview",
                    publisher.id.0
                );
            } else if roll < 0.74 {
                let host = domains::SOCIAL[rng.gen_range(0..domains::SOCIAL.len())];
                let _ = write!(scratch.req.url, "http://{host}/widget.js?ref={}", publisher.name);
            } else if roll < 0.90 {
                let host = domains::BEACON_HOSTS[rng.gen_range(0..domains::BEACON_HOSTS.len())];
                let _ = write!(scratch.req.url, "http://{host}/b.gif?u=");
                user.id.wire_into(&mut scratch.req.url);
                let _ = write!(scratch.req.url, "&r={}", rng.gen::<u32>());
            } else {
                let _ = write!(
                    scratch.req.url,
                    "http://www.{}/static/img{}.jpg",
                    publisher.name,
                    rng.gen_range(1..900)
                );
            }
            scratch.req.time = t;
            scratch.req.bytes = rng.gen_range(200..40_000);
            scratch.req.duration_ms = rng.gen_range(15..400);
            on_req(&scratch.req);
        }

        // 3. Cookie synchronisation (SSP ↔ DSP identity bridging).
        if rng.gen::<f64>() < self.config.cookie_sync_prob {
            let host =
                domains::COOKIE_SYNC_HOSTS[rng.gen_range(0..domains::COOKIE_SYNC_HOSTS.len())];
            let partner =
                domains::COOKIE_SYNC_HOSTS[rng.gen_range(0..domains::COOKIE_SYNC_HOSTS.len())];
            scratch.req.url.clear();
            let _ = write!(scratch.req.url, "http://{host}/getuid?uid=");
            user.id.wire_into(&mut scratch.req.url);
            let _ = write!(scratch.req.url, "&redir=http%3A%2F%2F{partner}%2Fsetuid");
            scratch.req.time = time;
            scratch.req.bytes = rng.gen_range(100..600);
            scratch.req.duration_ms = rng.gen_range(20..200);
            on_req(&scratch.req);
            market.dmp_mut().record_cookie_sync(user.id);
        }

        // 4. The RTB slot, if this view carries one.
        if rng.gen::<f64>() >= self.config.rtb_slot_prob {
            return;
        }
        scratch.rtb_slots.inc();
        let slot = sample_slot(rng, time);
        let adx = yav_auction::config::sample_adx(rng.gen());
        scratch.ad.time = time;
        scratch.ad.city = city;
        scratch.ad.interaction = if in_app {
            InteractionType::MobileApp
        } else {
            InteractionType::MobileWeb
        };
        scratch.ad.publisher = publisher.id;
        scratch.ad.publisher_name.clear();
        scratch.ad.publisher_name.push_str(&publisher.name);
        scratch.ad.iab = publisher.iab;
        scratch.ad.slot = slot;
        scratch.ad.adx = adx;
        scratch.ad.interest_match = user.interest_weight(publisher.iab);

        // The ad request toward the exchange (step 2–3 of Figure 1).
        scratch.req.url.clear();
        scratch
            .req
            .url
            .push_str(scratch.corpus.get(scratch.ad_prefix[adx.index()]));
        let _ = write!(
            scratch.req.url,
            "{}&size={}&cat=IAB{}",
            publisher.id.0,
            slot,
            publisher.iab.code()
        );
        scratch.req.time = time;
        scratch.req.bytes = rng.gen_range(300..2_000);
        scratch.req.duration_ms = rng.gen_range(30..150);
        on_req(&scratch.req);

        // The notification URL is rendered straight into the reused
        // request buffer; the borrowed auction path shares every RNG and
        // side-effect step with `run_auction` (pinned by the
        // `borrowed_auction_path_matches_owned` test in yav-auction).
        if let Some(sale) = market.run_auction_into(&scratch.ad, &mut scratch.req.url) {
            // RTB impression rate = rtb_impressions / requests.
            scratch.rtb_impressions.inc();
            // The notification URL fires through the browser as the
            // impression renders (steps 6–7).
            scratch.req.bytes = rng.gen_range(40..400);
            scratch.req.duration_ms = rng.gen_range(10..120);
            on_req(&scratch.req);
            on_truth(GroundTruth {
                impression: sale.impression,
                user: user.id,
                time,
                adx,
                charge: sale.charge,
                visibility: sale.visibility,
            });
        }
    }
}

/// Allocates a carrier IP for one user's day in a city: each city owns the
/// `10.(40+index).0.0/16` pool (the synthetic MaxMind table in
/// `yav-analyzer::geoip` mirrors this layout), with the host part derived
/// from the subscriber id plus daily churn.
pub fn city_ip(city: City, user: yav_types::UserId, churn: u8) -> u32 {
    let octet2 = 40 + city.index() as u32;
    let host = (user.id_hash() ^ churn as u32) & 0xFFFF;
    (10 << 24) | (octet2 << 16) | host
}

/// Small extension trait giving `UserId` a stable 16-bit-ish hash for IP
/// host parts.
trait UserIdHash {
    fn id_hash(&self) -> u32;
}

impl UserIdHash for yav_types::UserId {
    fn id_hash(&self) -> u32 {
        let x = self.0.wrapping_mul(0x9E37_79B9);
        x ^ (x >> 16)
    }
}

/// Samples an hour of day from the diurnal intensity profile (alias
/// table built once; one uniform per draw, like the CDF it replaced).
fn sample_hour<R: Rng>(rng: &mut R) -> u32 {
    static TABLE: OnceLock<AliasTable> = OnceLock::new();
    TABLE.get_or_init(|| AliasTable::new(&HOURLY)).sample(rng) as u32
}

/// Knuth Poisson sampler (means here are small; fine without log-space).
fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // absurd mean guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::MarketConfig;
    use yav_types::PriceVisibility;
    use yav_types::UserId;

    fn generate() -> Weblog {
        let gen = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        gen.collect(&mut market)
    }

    #[test]
    fn generates_events_and_truth() {
        let log = generate();
        assert!(log.requests.len() > 1000, "requests {}", log.requests.len());
        assert!(log.truth.len() > 50, "impressions {}", log.truth.len());
        // Every truth record corresponds to a notification URL in the log.
        let nurl_count = log
            .requests
            .iter()
            .filter(|r| {
                yav_nurl::Url::parse(&r.url)
                    .ok()
                    .and_then(|u| yav_nurl::NurlDetector::new().detect(&u))
                    .is_some()
            })
            .count();
        assert_eq!(nurl_count, log.truth.len());
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate();
        let b = generate();
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.requests[..50], b.requests[..50]);
    }

    #[test]
    fn both_visibilities_present() {
        let log = generate();
        let enc = log
            .truth
            .iter()
            .filter(|t| t.visibility == PriceVisibility::Encrypted)
            .count();
        let clear = log.truth.len() - enc;
        assert!(enc > 0, "no encrypted impressions");
        assert!(clear > enc, "cleartext should dominate 2015 mobile RTB");
        let share = enc as f64 / log.truth.len() as f64;
        assert!((0.15..=0.45).contains(&share), "encrypted share {share}");
    }

    #[test]
    fn parallel_is_thread_count_invariant() {
        let parallel = |threads: usize| {
            let mut config = WeblogConfig::small();
            config.users = 70; // three shards, one ragged
            config.days = 10;
            config.exec = yav_exec::ExecConfig::with_threads(threads);
            WeblogGenerator::new(config).collect_parallel(&MarketConfig::default())
        };
        let one = parallel(1);
        let two = parallel(2);
        let eight = parallel(8);
        assert!(one.truth.len() > 50);
        assert_eq!(one.requests, two.requests);
        assert_eq!(one.truth, two.truth);
        assert_eq!(one.requests, eight.requests);
        assert_eq!(one.truth, eight.truth);
    }

    #[test]
    fn parallel_stream_is_time_ordered() {
        let mut config = WeblogConfig::tiny();
        config.exec = yav_exec::ExecConfig::with_threads(4);
        let log = WeblogGenerator::new(config).collect_parallel(&MarketConfig::default());
        for w in log.requests.windows(2) {
            assert!(
                (w[0].time.minutes(), w[0].user.0) <= (w[1].time.minutes(), w[1].user.0),
                "canonical order violated"
            );
        }
        // The stream still carries detectable notifications.
        let nurls = log
            .requests
            .iter()
            .filter(|r| {
                yav_nurl::Url::parse(&r.url)
                    .ok()
                    .and_then(|u| yav_nurl::NurlDetector::new().detect(&u))
                    .is_some()
            })
            .count();
        assert_eq!(nurls, log.truth.len());
    }

    #[test]
    fn single_shard_parallel_matches_serial_modulo_order() {
        // Tiny fits in one shard, and shard 0 is the legacy market, so
        // the parallel stream is the serial stream re-sorted.
        let gen = WeblogGenerator::new(WeblogConfig::tiny());
        assert_eq!(gen.shard_count(), 1);
        let mut serial = {
            let mut market = Market::new(MarketConfig::default());
            gen.collect(&mut market)
        };
        serial.sort_canonical();
        let parallel = gen.collect_parallel(&MarketConfig::default());
        assert_eq!(serial.requests, parallel.requests);
        assert_eq!(serial.truth, parallel.truth);
    }

    #[test]
    fn urls_all_parse() {
        let log = generate();
        for r in log.requests.iter().take(5000) {
            assert!(
                yav_nurl::Url::parse(&r.url).is_ok(),
                "unparseable URL {}",
                r.url
            );
        }
    }

    #[test]
    fn poisson_mean_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 3.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn hours_follow_diurnal_profile() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 24];
        for _ in 0..50_000 {
            counts[sample_hour(&mut rng) as usize] += 1;
        }
        // Evenings beat small hours decisively.
        assert!(counts[20] > counts[3] * 4);
    }

    #[test]
    fn truth_is_time_ordered_per_user() {
        let log = generate();
        use std::collections::HashMap;
        let mut last: HashMap<UserId, SimTime> = HashMap::new();
        for t in &log.truth {
            if let Some(prev) = last.get(&t.user) {
                // Within a user, days advance monotonically (intra-day
                // view order is random, so compare day granularity).
                assert!(
                    t.time.minutes() / yav_types::MINUTES_PER_DAY
                        >= prev.minutes() / yav_types::MINUTES_PER_DAY
                );
            }
            last.insert(t.user, t.time);
        }
    }
}
