//! The non-publisher domain universe: CDNs, analytics, social widgets and
//! third-party trackers.
//!
//! The paper's analyzer buckets traffic into five groups with an
//! adblock-style blacklist (§4.1): Advertising, Analytics, Social,
//! 3rd-party content, Rest. The generator draws auxiliary requests from
//! the fixed rosters below; `yav-analyzer` carries its own independent
//! blacklist whose coverage of these names is pinned by a cross-crate
//! test.

/// Analytics collectors (page-measurement beacons).
pub const ANALYTICS: [&str; 6] = [
    "stats.metricsrus.example",
    "collector.webmetrica.example",
    "px.audiencecount.example",
    "hits.pagepulse.example",
    "t.clickstream.example",
    "rum.speedindex.example",
];

/// Social-widget hosts.
pub const SOCIAL: [&str; 5] = [
    "widgets.facelink.example",
    "platform.chirper.example",
    "badge.fotogrid.example",
    "share.pinmark.example",
    "connect.vidtube.example",
];

/// Third-party content: CDNs, font/asset hosts, tag managers.
pub const THIRD_PARTY: [&str; 7] = [
    "cdn.fastassets.example",
    "static.cloudfiles.example",
    "fonts.typeserve.example",
    "img.pixhost.example",
    "tags.tagrouter.example",
    "js.libmirror.example",
    "media.streamedge.example",
];

/// Advertising-side trackers that are *not* exchanges: web-beacon and
/// cookie-sync hosts (counted as user features in Table 4).
pub const AD_TRACKERS: [&str; 6] = [
    "beacon.adsight.example",
    "pixel.trackwise.example",
    "sync.cookiebridge.example",
    "match.idgraph.example",
    "usersync.bidlink.example",
    "retarget.cartreminder.example",
];

/// The cookie-sync hosts within [`AD_TRACKERS`] (requests against these
/// carry `getuid`-style redirects).
pub const COOKIE_SYNC_HOSTS: [&str; 3] = [
    "sync.cookiebridge.example",
    "match.idgraph.example",
    "usersync.bidlink.example",
];

/// The 1×1-pixel beacon hosts within [`AD_TRACKERS`].
pub const BEACON_HOSTS: [&str; 2] = ["beacon.adsight.example", "pixel.trackwise.example"];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rosters_are_disjoint_and_unique() {
        let mut seen = HashSet::new();
        for d in ANALYTICS
            .iter()
            .chain(&SOCIAL)
            .chain(&THIRD_PARTY)
            .chain(&AD_TRACKERS)
        {
            assert!(seen.insert(*d), "duplicate domain {d}");
        }
    }

    #[test]
    fn sync_and_beacon_hosts_are_trackers() {
        for d in COOKIE_SYNC_HOSTS.iter().chain(&BEACON_HOSTS) {
            assert!(AD_TRACKERS.contains(d), "{d} must be an ad tracker");
        }
    }
}
