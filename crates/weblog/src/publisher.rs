//! The publisher universe: websites and mobile apps with RTB inventory.
//!
//! Dataset D sees ~5.6 k distinct RTB publishers per month across 18 IAB
//! categories (Table 3). The universe here is a Zipf-popularity roster of
//! synthetic sites and apps, each with an IAB category and a slot-format
//! mix that drifts through 2015 — the Figure-12 story where the 300×250
//! MPU overtakes the 320×50 banner from May onwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use yav_stats::AliasTable;
use yav_types::{AdSlotSize, IabCategory, PublisherId, SimTime};

/// One publisher (a website or a mobile app).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publisher {
    /// Dense identifier.
    pub id: PublisherId,
    /// Domain (web) or bundle-style name (app).
    pub name: String,
    /// IAB tier-1 content category.
    pub iab: IabCategory,
    /// True for mobile applications.
    pub is_app: bool,
    /// Zipf popularity weight (not normalised).
    pub weight: f64,
}

/// The full roster plus sampling machinery.
#[derive(Debug, Clone)]
pub struct PublisherUniverse {
    publishers: Vec<Publisher>,
    /// Alias tables for O(1) popularity draws, web and app separately,
    /// plus the map from alias bucket back into `publishers`.
    web_alias: AliasTable,
    app_alias: AliasTable,
    web_idx: Vec<u32>,
    app_idx: Vec<u32>,
}

/// Category mix: News/Entertainment/Sports-heavy, Business/Science thin —
/// a plausible mobile-content skew that leaves every category populated.
const IAB_WEIGHTS: [(IabCategory, f64); 18] = [
    (IabCategory::News, 0.16),
    (IabCategory::ArtsEntertainment, 0.14),
    (IabCategory::Sports, 0.12),
    (IabCategory::Technology, 0.09),
    (IabCategory::Hobbies, 0.08),
    (IabCategory::Shopping, 0.07),
    (IabCategory::Travel, 0.06),
    (IabCategory::FoodDrink, 0.05),
    (IabCategory::StyleFashion, 0.05),
    (IabCategory::Health, 0.04),
    (IabCategory::Automotive, 0.035),
    (IabCategory::Society, 0.03),
    (IabCategory::HomeGarden, 0.025),
    (IabCategory::PersonalFinance, 0.02),
    (IabCategory::Education, 0.02),
    (IabCategory::Business, 0.02),
    (IabCategory::Careers, 0.015),
    (IabCategory::Science, 0.01),
];

impl PublisherUniverse {
    /// Builds a deterministic universe of `web + app` publishers.
    pub fn build(seed: u64, web: u32, app: u32) -> PublisherUniverse {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9B11_0000_0000_0004);
        let mut publishers = Vec::with_capacity((web + app) as usize);
        let mut id = 0u32;
        for (count, is_app) in [(web, false), (app, true)] {
            for rank in 0..count {
                let iab = sample_iab(&mut rng);
                let name = synth_name(&mut rng, iab, is_app, id);
                // Zipf(1.05) popularity by rank within each channel.
                let weight = 1.0 / ((rank + 1) as f64).powf(1.05);
                publishers.push(Publisher {
                    id: PublisherId(id),
                    name,
                    iab,
                    is_app,
                    weight,
                });
                id += 1;
            }
        }
        let channel = |app_flag: bool| {
            let mut idx = Vec::new();
            let mut weights = Vec::new();
            for (i, p) in publishers.iter().enumerate() {
                if p.is_app == app_flag {
                    idx.push(i as u32);
                    weights.push(p.weight);
                }
            }
            (AliasTable::new(&weights), idx)
        };
        let (web_alias, web_idx) = channel(false);
        let (app_alias, app_idx) = channel(true);
        PublisherUniverse {
            publishers,
            web_alias,
            app_alias,
            web_idx,
            app_idx,
        }
    }

    /// All publishers.
    pub fn all(&self) -> &[Publisher] {
        &self.publishers
    }

    /// Looks up by id.
    pub fn get(&self, id: PublisherId) -> Option<&Publisher> {
        self.publishers.get(id.0 as usize)
    }

    /// Samples a publisher for one view. `prefer` biases toward the
    /// user's interest categories: with probability `affinity` the draw is
    /// retried until the category matches one of the user's interests (up
    /// to a bounded number of attempts — the web is only so deep).
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        is_app: bool,
        prefer: &[IabCategory],
        affinity: f64,
    ) -> &Publisher {
        let want_match = !prefer.is_empty() && rng.gen::<f64>() < affinity;
        for _attempt in 0..8 {
            let p = self.sample_raw(rng, is_app);
            if !want_match || prefer.contains(&p.iab) {
                return p;
            }
        }
        self.sample_raw(rng, is_app)
    }

    fn sample_raw<R: Rng>(&self, rng: &mut R, is_app: bool) -> &Publisher {
        let (alias, idx) = if is_app {
            (&self.app_alias, &self.app_idx)
        } else {
            (&self.web_alias, &self.web_idx)
        };
        &self.publishers[idx[alias.sample(rng)] as usize]
    }
}

/// Samples an IAB category from the content mix (alias table built once;
/// one uniform per draw, same budget as the CDF scan it replaced).
fn sample_iab<R: Rng>(rng: &mut R) -> IabCategory {
    static TABLE: OnceLock<AliasTable> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let weights: Vec<f64> = IAB_WEIGHTS.iter().map(|&(_, w)| w).collect();
        AliasTable::new(&weights)
    });
    IAB_WEIGHTS[table.sample(rng)].0
}

/// Synthesises a deterministic publisher name from category + id.
fn synth_name<R: Rng>(rng: &mut R, iab: IabCategory, is_app: bool, id: u32) -> String {
    const STEMS: [&str; 12] = [
        "daily", "super", "mi", "el", "la", "pro", "top", "zona", "mundo", "vida", "red", "plan",
    ];
    let topic = match iab {
        IabCategory::News => "noticias",
        IabCategory::ArtsEntertainment => "ocio",
        IabCategory::Sports => "deporte",
        IabCategory::Technology => "tec",
        IabCategory::Hobbies => "aficion",
        IabCategory::Shopping => "compras",
        IabCategory::Travel => "viajes",
        IabCategory::FoodDrink => "cocina",
        IabCategory::StyleFashion => "moda",
        IabCategory::Health => "salud",
        IabCategory::Automotive => "motor",
        IabCategory::Society => "gente",
        IabCategory::HomeGarden => "hogar",
        IabCategory::PersonalFinance => "finanzas",
        IabCategory::Education => "aula",
        IabCategory::Business => "negocios",
        IabCategory::Careers => "empleo",
        IabCategory::Science => "ciencia",
    };
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    if is_app {
        format!("com.{stem}{topic}.app{id}")
    } else {
        format!("{stem}{topic}{id}.example")
    }
}

/// Figure-12 slot mix: interpolates between the early-2015 banner-heavy
/// mix and the late-2015 MPU-heavy mix. The crossover lands in May, as in
/// the paper.
pub fn slot_mix(time: SimTime) -> Vec<(AdSlotSize, f64)> {
    // Interpolation factor: 0 in January 2015 → 1 in December 2015; the
    // curve is steepest through Q2.
    let month = if time.year() <= 2015 {
        time.month().index() as f64
    } else {
        11.0
    };
    let t = (month / 11.0).powf(0.75);

    let early: [(AdSlotSize, f64); 17] = [
        (AdSlotSize::S320x50, 0.34),
        (AdSlotSize::S300x250, 0.17),
        (AdSlotSize::S728x90, 0.13),
        (AdSlotSize::S468x60, 0.07),
        (AdSlotSize::S300x50, 0.06),
        (AdSlotSize::S160x600, 0.045),
        (AdSlotSize::S336x280, 0.04),
        (AdSlotSize::S120x600, 0.035),
        (AdSlotSize::S200x200, 0.03),
        (AdSlotSize::S316x150, 0.025),
        (AdSlotSize::S280x250, 0.02),
        (AdSlotSize::S320x480, 0.02),
        (AdSlotSize::S480x320, 0.015),
        (AdSlotSize::S300x600, 0.015),
        (AdSlotSize::S800x130, 0.01),
        (AdSlotSize::S400x300, 0.01),
        (AdSlotSize::S350x600, 0.005),
    ];
    let late: [(AdSlotSize, f64); 17] = [
        (AdSlotSize::S300x250, 0.36),
        (AdSlotSize::S320x50, 0.15),
        (AdSlotSize::S728x90, 0.14),
        (AdSlotSize::S468x60, 0.06),
        (AdSlotSize::S336x280, 0.05),
        (AdSlotSize::S160x600, 0.05),
        (AdSlotSize::S300x600, 0.04),
        (AdSlotSize::S320x480, 0.035),
        (AdSlotSize::S480x320, 0.025),
        (AdSlotSize::S120x600, 0.025),
        (AdSlotSize::S300x50, 0.02),
        (AdSlotSize::S200x200, 0.015),
        (AdSlotSize::S316x150, 0.015),
        (AdSlotSize::S280x250, 0.015),
        (AdSlotSize::S800x130, 0.01),
        (AdSlotSize::S400x300, 0.01),
        (AdSlotSize::S350x600, 0.01),
    ];

    let mut mix: Vec<(AdSlotSize, f64)> = AdSlotSize::FIGURE12
        .iter()
        .map(|&s| {
            let e = early
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, w)| *w)
                .unwrap_or(0.0);
            let l = late
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, w)| *w)
                .unwrap_or(0.0);
            (s, e * (1.0 - t) + l * t)
        })
        .collect();
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    for (_, w) in &mut mix {
        *w /= total;
    }
    mix
}

/// Samples a slot format from the mix in force at `time`. The mix only
/// varies by month (and saturates after 2015), so twelve alias tables
/// cover every reachable distribution; each draw is O(1) and consumes
/// one uniform, like the CDF scan it replaced.
pub fn sample_slot<R: Rng>(rng: &mut R, time: SimTime) -> AdSlotSize {
    static TABLES: OnceLock<[AliasTable; 12]> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        std::array::from_fn(|m| {
            let t = SimTime::from_ymd_hm(2015, m as u32 + 1, 15, 0, 0);
            let weights: Vec<f64> = slot_mix(t).iter().map(|&(_, w)| w).collect();
            AliasTable::new(&weights)
        })
    });
    let month = if time.year() <= 2015 {
        time.month().index()
    } else {
        11
    };
    AdSlotSize::FIGURE12[tables[month].sample(rng)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_deterministic_and_sized() {
        let a = PublisherUniverse::build(1, 100, 40);
        let b = PublisherUniverse::build(1, 100, 40);
        assert_eq!(a.all().len(), 140);
        assert_eq!(a.all(), b.all());
        assert_eq!(a.all().iter().filter(|p| p.is_app).count(), 40);
    }

    #[test]
    fn names_reflect_channel() {
        let u = PublisherUniverse::build(2, 50, 50);
        for p in u.all() {
            if p.is_app {
                assert!(p.name.starts_with("com."), "{}", p.name);
            } else {
                assert!(p.name.ends_with(".example"), "{}", p.name);
            }
        }
    }

    #[test]
    fn every_category_represented_at_scale() {
        let u = PublisherUniverse::build(3, 1800, 700);
        for iab in IabCategory::ALL {
            assert!(
                u.all().iter().any(|p| p.iab == iab),
                "category {iab} missing from universe"
            );
        }
    }

    #[test]
    fn sampling_is_popularity_skewed() {
        let u = PublisherUniverse::build(4, 200, 50);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u32; u.all().len()];
        for _ in 0..20_000 {
            let p = u.sample(&mut rng, false, &[], 0.0);
            counts[p.id.0 as usize] += 1;
        }
        // The head of the web roster (id 0) must dominate the tail.
        let head = counts[0];
        let tail = counts[150];
        assert!(head > tail * 5, "zipf head {head} vs tail {tail}");
    }

    #[test]
    fn affinity_biases_toward_interests() {
        let u = PublisherUniverse::build(5, 500, 100);
        let mut rng = StdRng::seed_from_u64(10);
        let prefer = [IabCategory::Sports];
        let hits = (0..4000)
            .filter(|_| u.sample(&mut rng, false, &prefer, 0.9).iab == IabCategory::Sports)
            .count();
        // Base rate is ~12 %; with affinity 0.9 it should be far above.
        assert!(hits > 1600, "sports hits {hits}/4000");
    }

    #[test]
    fn slot_mix_crossover_in_may() {
        let jan = SimTime::from_ymd_hm(2015, 1, 15, 0, 0);
        let dec = SimTime::from_ymd_hm(2015, 12, 15, 0, 0);
        let weight = |t: SimTime, s: AdSlotSize| {
            slot_mix(t)
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, w)| *w)
                .unwrap()
        };
        assert!(weight(jan, AdSlotSize::S320x50) > weight(jan, AdSlotSize::S300x250));
        assert!(weight(dec, AdSlotSize::S300x250) > weight(dec, AdSlotSize::S320x50));
        // Crossover roughly mid-year: by June the MPU leads.
        let jun = SimTime::from_ymd_hm(2015, 6, 15, 0, 0);
        assert!(weight(jun, AdSlotSize::S300x250) > weight(jun, AdSlotSize::S320x50));
    }

    #[test]
    fn slot_mix_sums_to_one() {
        for month in [1u32, 5, 9, 12] {
            let t = SimTime::from_ymd_hm(2015, month, 10, 0, 0);
            let total: f64 = slot_mix(t).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "month {month}: {total}");
        }
    }

    #[test]
    fn sample_slot_draws_every_figure12_size_eventually() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = SimTime::from_ymd_hm(2015, 7, 1, 0, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            seen.insert(sample_slot(&mut rng, t));
        }
        assert!(seen.len() >= 15, "only {} sizes drawn", seen.len());
    }
}
