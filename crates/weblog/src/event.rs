//! The HTTP event stream's record types.

use serde::{Deserialize, Serialize};
use yav_types::{Adx, Cpm, ImpressionId, PriceVisibility, SimTime, UserId};

/// One logged HTTP request — the wire surface the paper's proxy captured.
///
/// Deliberately *untyped* beyond transport facts: the URL is a string, the
/// device is a user-agent string. Classifying, geolocating and feature-
/// extracting from these is the analyzer's job, as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Request timestamp.
    pub time: SimTime,
    /// Panel user behind the request (the proxy knows its subscribers).
    pub user: UserId,
    /// Full request URL.
    pub url: String,
    /// Client IPv4 address (as `u32`, network order). Carriers assign
    /// city-scoped pools, so reverse geo-coding recovers the user's city.
    pub client_ip: u32,
    /// `User-Agent` header.
    pub user_agent: String,
    /// Response size in bytes.
    pub bytes: u32,
    /// Request duration in milliseconds.
    pub duration_ms: u32,
}

impl HttpRequest {
    /// A bare URL-only observation: a request seen without its headers or
    /// transfer metadata (e.g. YourAdValue's URL-only ingestion path).
    /// The user is the anonymous placeholder `UserId(0)` — the client
    /// runtime never identifies its own user — and the remaining fields
    /// are zeroed.
    pub fn bare(time: SimTime, url: impl Into<String>) -> HttpRequest {
        HttpRequest {
            time,
            user: UserId(0),
            url: url.into(),
            client_ip: 0,
            user_agent: String::new(),
            bytes: 0,
            duration_ms: 0,
        }
    }

    /// Overwrites this record with `src`'s contents, reusing the string
    /// buffers already held — the pooled-slot form of `clone_from` that
    /// staging buffers use to stay heap-quiet once their slots have
    /// reached the stream's line-length high-water mark.
    pub fn copy_from(&mut self, src: &HttpRequest) {
        self.time = src.time;
        self.user = src.user;
        self.url.clear();
        self.url.push_str(&src.url);
        self.client_ip = src.client_ip;
        self.user_agent.clear();
        self.user_agent.push_str(&src.user_agent);
        self.bytes = src.bytes;
        self.duration_ms = src.duration_ms;
    }
}

/// Simulator-side ground truth for one sold RTB impression.
///
/// **Not observable.** Honest pipeline stages (analyzer, PME, YourAdValue)
/// must never consume these records; they exist so EXPERIMENTS.md can
/// report how close the estimated encrypted totals come to the truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The impression this truth belongs to.
    pub impression: ImpressionId,
    /// The user who saw it.
    pub user: UserId,
    /// When it rendered.
    pub time: SimTime,
    /// The exchange that sold it.
    pub adx: Adx,
    /// The true charge price.
    pub charge: Cpm,
    /// How the notification reported it.
    pub visibility: PriceVisibility,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_serialize() {
        let r = HttpRequest {
            time: SimTime::EPOCH,
            user: UserId(1),
            url: "http://example.com/".into(),
            client_ip: 0x0A0A_0102,
            user_agent: "UA".into(),
            bytes: 1000,
            duration_ms: 50,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: HttpRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
