//! Dataset-D generator: a year of mobile browsing for a 1 594-user panel.
//!
//! The paper bootstraps its Price Modeling Engine from a 2015-long weblog
//! of 1 594 volunteering mobile users in Spain (373 M HTTP requests,
//! 78 560 RTB impressions — Table 3). That trace cannot be obtained, so
//! this crate *generates* one: a population model ([`population`]), a
//! publisher universe ([`publisher`]), a session/browsing model
//! ([`generator`]) and the supporting domain universe ([`domains`]) emit a
//! deterministic HTTP event stream whose ad slots are auctioned through
//! `yav-auction`'s market. Everything downstream (the analyzer, PME,
//! YourAdValue) consumes only the stream's wire surface — raw URLs,
//! user-agent strings, byte counts — exactly like the paper's proxy logs.
//!
//! Events are **streamed** to a visitor callback rather than materialised:
//! the paper-scale configuration produces millions of requests, and the
//! analyzer is an online consumer anyway. `collect`-style helpers exist
//! for test-sized configurations.
//!
//! Simulator-side ground truth (true charge prices per impression, even
//! encrypted ones) is reported alongside the stream but segregated in
//! [`event::GroundTruth`] records, which honest consumers must not read —
//! they exist to *validate* estimation quality in EXPERIMENTS.md.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod domains;
pub mod event;
pub mod generator;
pub mod population;
pub mod publisher;

pub use config::WeblogConfig;
pub use event::{GroundTruth, HttpRequest};
pub use generator::{Weblog, WeblogGenerator, USERS_PER_SHARD};
pub use population::{Panel, PanelUser};
pub use publisher::{Publisher, PublisherUniverse};
