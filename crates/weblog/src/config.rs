//! Weblog generator configuration and scale presets.

use serde::{Deserialize, Serialize};
use yav_exec::ExecConfig;
use yav_types::SimTime;

/// Parameters of the synthetic panel trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeblogConfig {
    /// Master seed for the generator's randomness streams (independent of
    /// the market's seed).
    pub seed: u64,
    /// Panel size (the paper's dataset D has 1 594 users).
    pub users: u32,
    /// First simulated day.
    pub start: SimTime,
    /// Number of simulated days (the paper covers all of 2015).
    pub days: u32,
    /// Mean page/app views per user per day (before per-user activity
    /// heterogeneity).
    pub views_per_user_day: f64,
    /// Probability a view carries an RTB-auctioned ad slot.
    pub rtb_slot_prob: f64,
    /// Mean auxiliary requests (assets, trackers, beacons) per view.
    pub aux_requests_per_view: f64,
    /// Probability a view triggers a cookie-synchronisation redirect.
    pub cookie_sync_prob: f64,
    /// Number of web publishers in the universe.
    pub web_publishers: u32,
    /// Number of app publishers in the universe.
    pub app_publishers: u32,
    /// Worker pool for the parallel generation path
    /// ([`crate::WeblogGenerator::collect_parallel`]). Scheduling only —
    /// the generated stream is identical for every thread count.
    pub exec: ExecConfig,
    /// Materialise panel users per shard block instead of up front.
    /// Lazy panels draw each user independently from `(seed, id)` (a
    /// *different* — equally valid — panel than the eager sequential
    /// draw), so a million-user run never holds more than one shard's
    /// users in memory. Leave `false` wherever byte-compatibility with
    /// the eager presets matters.
    pub lazy_panel: bool,
}

impl WeblogConfig {
    /// Paper-scale dataset D: 1 594 users over the whole of 2015, tuned to
    /// land near the 78 560 RTB impressions of Table 3. Generating it
    /// streams a few million HTTP events — use release builds.
    pub fn paper() -> WeblogConfig {
        WeblogConfig {
            seed: 0xD474,
            users: 1594,
            start: SimTime::EPOCH,
            days: 365,
            views_per_user_day: 2.2,
            rtb_slot_prob: 0.072,
            aux_requests_per_view: 6.0,
            cookie_sync_prob: 0.03,
            web_publishers: 1800,
            app_publishers: 700,
            exec: ExecConfig::default(),
            lazy_panel: false,
        }
    }

    /// Huge streaming scale: one simulated day of a million-user panel.
    /// Only meaningful through the constant-memory streaming builder —
    /// the panel is lazy (per-shard blocks) and the full weblog is never
    /// materialised. One day keeps the event count (~11 M HTTP requests)
    /// tractable on one core while exercising population-scale state.
    pub fn huge() -> WeblogConfig {
        WeblogConfig {
            seed: 0xD474,
            users: 1_000_000,
            start: SimTime::EPOCH,
            days: 1,
            views_per_user_day: 2.2,
            rtb_slot_prob: 0.072,
            aux_requests_per_view: 4.0,
            cookie_sync_prob: 0.03,
            web_publishers: 1800,
            app_publishers: 700,
            exec: ExecConfig::default(),
            lazy_panel: true,
        }
    }

    /// Test-scale configuration: ~100 users over two months, producing a
    /// few thousand impressions in well under a second.
    pub fn small() -> WeblogConfig {
        WeblogConfig {
            seed: 0xD474,
            users: 120,
            start: SimTime::EPOCH,
            days: 60,
            views_per_user_day: 3.0,
            rtb_slot_prob: 0.25,
            aux_requests_per_view: 3.0,
            cookie_sync_prob: 0.03,
            web_publishers: 300,
            app_publishers: 120,
            exec: ExecConfig::default(),
            lazy_panel: false,
        }
    }

    /// Even smaller: unit-test scale (tens of users, two weeks).
    pub fn tiny() -> WeblogConfig {
        WeblogConfig {
            seed: 0xD474,
            users: 30,
            start: SimTime::EPOCH,
            days: 14,
            views_per_user_day: 3.0,
            rtb_slot_prob: 0.3,
            aux_requests_per_view: 2.0,
            cookie_sync_prob: 0.05,
            web_publishers: 80,
            app_publishers: 40,
            exec: ExecConfig::default(),
            lazy_panel: false,
        }
    }

    /// Last simulated instant (exclusive).
    pub fn end(&self) -> SimTime {
        self.start.plus_days(self.days as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table3_shape() {
        let c = WeblogConfig::paper();
        assert_eq!(c.users, 1594);
        assert_eq!(c.days, 365);
        // Expected sold impressions ≈ users·days·views·slot_prob·fill.
        let expected =
            c.users as f64 * c.days as f64 * c.views_per_user_day * c.rtb_slot_prob * 0.85;
        assert!(
            (60_000.0..=100_000.0).contains(&expected),
            "expected impressions {expected:.0} should be near Table 3's 78 560"
        );
    }

    #[test]
    fn end_is_start_plus_days() {
        let c = WeblogConfig::tiny();
        assert_eq!(c.end() - c.start, 14 * yav_types::MINUTES_PER_DAY);
    }
}
