//! Exchange-side machinery: integrations and notification emission.
//!
//! An *integration* is one (exchange, DSP) reporting channel. Its price
//! visibility is decided here:
//!
//! * encrypted-house exchanges always report encrypted;
//! * cleartext-house integrations may *migrate* to encryption at a
//!   per-integration flip day drawn at construction — the steady rise of
//!   encrypted ADX-DSP pairs the paper plots in Figure 2;
//! * retargeting DSPs ask for encryption wherever the exchange offers it.
//!
//! Each encrypted integration owns a [`PriceCrypter`] keyed to the pair,
//! mirroring the real protocol where the exchange shares per-buyer
//! secrets. Observers (everything downstream of the emitted URL) never
//! see these keys.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use yav_crypto::{PriceCrypter, PriceKeys};
use yav_nurl::fields::{NurlFields, PricePayload};
use yav_types::{Adx, Cpm, DspId, PriceVisibility, SimTime};

/// Simulation horizon for migration draws: flip days land anywhere in
/// 2015–2016 (the study window).
const HORIZON_DAYS: i64 = 730;

/// One (exchange, DSP) reporting channel.
#[derive(Debug, Clone)]
pub struct Integration {
    adx: Adx,
    dsp: DspId,
    /// Day (since epoch) after which this integration reports encrypted;
    /// `None` means it stays cleartext for the whole horizon.
    flip_day: Option<i64>,
    crypter: PriceCrypter,
    iv_counter: u64,
}

impl Integration {
    /// The integration's price visibility at a given time.
    pub fn visibility(&self, time: SimTime) -> PriceVisibility {
        match self.flip_day {
            Some(day) if time.minutes() >= day * yav_types::MINUTES_PER_DAY => {
                PriceVisibility::Encrypted
            }
            Some(_) | None => PriceVisibility::Cleartext,
        }
    }

    /// Encodes a charge price for the wire at `time`, encrypting when the
    /// channel calls for it.
    pub fn encode_price(&mut self, charge: Cpm, time: SimTime) -> PricePayload {
        match self.visibility(time) {
            PriceVisibility::Cleartext => PricePayload::Cleartext(charge),
            PriceVisibility::Encrypted => {
                let mut iv = [0u8; 16];
                iv[..8].copy_from_slice(&self.iv_counter.to_be_bytes());
                iv[8..12].copy_from_slice(&(self.dsp.0).to_be_bytes());
                iv[12..16].copy_from_slice(&(self.adx.index() as u32).to_be_bytes());
                self.iv_counter += 1;
                PricePayload::Encrypted(self.crypter.encrypt(charge.micros().max(0) as u64, iv))
            }
        }
    }

    /// The DSP-side decryption of a token this integration produced —
    /// what the buyer's performance report contains. Exposed so the
    /// probing-campaign harness can receive ground truth exactly the way
    /// the paper's campaigns did.
    pub fn crypter(&self) -> &PriceCrypter {
        &self.crypter
    }
}

/// The full integration matrix.
///
/// Cloning copies the derived keys instead of re-deriving them — the
/// parallel world builders stamp per-shard matrices from one template
/// build (see [`crate::MarketTemplate`]), since deriving the keys costs
/// two HMAC-SHA256s per (exchange, DSP) pair.
#[derive(Debug, Clone)]
pub struct IntegrationMatrix {
    map: HashMap<(Adx, DspId), Integration>,
}

impl IntegrationMatrix {
    /// Builds the matrix for a DSP roster. Migration flip days are drawn
    /// once, deterministically from `seed`.
    pub fn build(
        seed: u64,
        dsps: &[crate::dsp::DspProfile],
        migration_rate_major: f64,
        migration_rate_minor: f64,
    ) -> IntegrationMatrix {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1A7E_6000_0000_0002);
        let mut map = HashMap::new();
        for adx in Adx::ALL {
            for dsp in dsps {
                let flip_day = match adx.house_style() {
                    // Encrypted houses encrypt from day zero.
                    PriceVisibility::Encrypted => Some(0),
                    PriceVisibility::Cleartext => {
                        let rate = if crate::config::MarketConfig::is_major_cleartext(adx) {
                            migration_rate_major
                        } else {
                            migration_rate_minor
                        };
                        // Retargeters push for encryption: raised odds.
                        let rate = if dsp.prefers_encryption() {
                            (rate * 1.5).min(1.0)
                        } else {
                            rate
                        };
                        if rng.gen::<f64>() < rate {
                            Some(rng.gen_range(0..HORIZON_DAYS))
                        } else {
                            None
                        }
                    }
                };
                let label = format!("{}|{}", adx.domain(), dsp.id.domain());
                map.insert(
                    (adx, dsp.id),
                    Integration {
                        adx,
                        dsp: dsp.id,
                        flip_day,
                        crypter: PriceCrypter::new(PriceKeys::derive(&label)),
                        iv_counter: 0,
                    },
                );
            }
        }
        IntegrationMatrix { map }
    }

    /// Mutable access to one integration.
    pub fn get_mut(&mut self, adx: Adx, dsp: DspId) -> Option<&mut Integration> {
        self.map.get_mut(&(adx, dsp))
    }

    /// Shared access to one integration.
    pub fn get(&self, adx: Adx, dsp: DspId) -> Option<&Integration> {
        self.map.get(&(adx, dsp))
    }

    /// Fraction of integrations reporting encrypted at `time` — the
    /// Figure-2 y-axis.
    pub fn encrypted_pair_share(&self, time: SimTime) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        let enc = self
            .map
            .values()
            .filter(|i| i.visibility(time) == PriceVisibility::Encrypted)
            .count();
        enc as f64 / self.map.len() as f64
    }
}

/// Assembles the notification payload an exchange hands to the browser.
/// The price payload is passed in pre-encoded so the market can share one
/// [`Integration::encode_price`] call between this owned form and the
/// allocation-free borrowed renderer.
#[allow(clippy::too_many_arguments)]
pub fn notification(
    dsp: DspId,
    price: PricePayload,
    winner_bid: Cpm,
    req: &crate::request::AdRequest,
    impression: yav_types::ImpressionId,
    auction: yav_types::AuctionId,
    campaign: Option<yav_types::CampaignId>,
    latency_ms: u32,
) -> NurlFields {
    NurlFields {
        adx: req.adx,
        dsp,
        price,
        bid_price: Some(winner_bid),
        impression,
        auction,
        campaign,
        slot: Some(req.slot),
        publisher: Some(req.publisher_name.clone()),
        country: Some("ES".to_owned()),
        latency_ms: Some(latency_ms),
        ad_domain: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::DspProfile;

    fn matrix() -> IntegrationMatrix {
        IntegrationMatrix::build(1, &DspProfile::roster(30), 0.06, 0.35)
    }

    #[test]
    fn encrypted_houses_start_encrypted() {
        let m = matrix();
        let t0 = SimTime::EPOCH;
        for adx in Adx::ENCRYPTED_TARGETS {
            let i = m.get(adx, DspId(0)).unwrap();
            assert_eq!(i.visibility(t0), PriceVisibility::Encrypted);
        }
    }

    #[test]
    fn pair_share_rises_over_the_year() {
        let m = matrix();
        let jan = m.encrypted_pair_share(SimTime::from_ymd_hm(2015, 1, 15, 0, 0));
        let dec = m.encrypted_pair_share(SimTime::from_ymd_hm(2015, 12, 15, 0, 0));
        assert!(dec > jan, "encrypted pair share must rise: {jan} -> {dec}");
        // Encrypted houses alone put the floor around 8/17 of pairs.
        assert!(jan >= 8.0 / 17.0 - 0.05);
    }

    #[test]
    fn migration_is_sticky() {
        let m = matrix();
        // Once encrypted, an integration never goes back.
        for (_, i) in m.map.iter() {
            if let Some(day) = i.flip_day {
                let before = SimTime::from_minutes((day - 1).max(0) * yav_types::MINUTES_PER_DAY);
                let after = SimTime::from_minutes((day + 1) * yav_types::MINUTES_PER_DAY);
                if day > 0 {
                    assert_eq!(i.visibility(before), PriceVisibility::Cleartext);
                }
                assert_eq!(i.visibility(after), PriceVisibility::Encrypted);
            }
        }
    }

    #[test]
    fn encode_price_round_trips_through_dsp_keys() {
        let mut m = matrix();
        let t = SimTime::EPOCH;
        let i = m.get_mut(Adx::DoubleClick, DspId(2)).unwrap();
        let payload = i.encode_price(Cpm::from_f64(1.25), t);
        let token = payload.encrypted().expect("doubleclick encrypts");
        assert_eq!(i.crypter().decrypt(token).unwrap(), 1_250_000);
    }

    #[test]
    fn ivs_never_repeat() {
        let mut m = matrix();
        let i = m.get_mut(Adx::OpenX, DspId(1)).unwrap();
        let a = i.encode_price(Cpm::ONE, SimTime::EPOCH);
        let b = i.encode_price(Cpm::ONE, SimTime::EPOCH);
        assert_ne!(a.encrypted().unwrap(), b.encrypted().unwrap());
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = matrix();
        let b = matrix();
        for (k, ia) in a.map.iter() {
            assert_eq!(ia.flip_day, b.map[k].flip_day);
        }
    }

    #[test]
    fn cleartext_major_rarely_migrates() {
        let m = IntegrationMatrix::build(5, &DspProfile::roster(200), 0.06, 0.35);
        let migrated = |adx: Adx| {
            (0..200u32)
                .filter(|&d| m.get(adx, DspId(d)).unwrap().flip_day.is_some())
                .count() as f64
                / 200.0
        };
        assert!(
            migrated(Adx::MoPub) < 0.20,
            "mopub {}",
            migrated(Adx::MoPub)
        );
        assert!(migrated(Adx::Turn) > 0.25, "turn {}", migrated(Adx::Turn));
    }
}
