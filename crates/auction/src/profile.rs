//! The Data Management Platform (DMP): run-time user profiles.
//!
//! The paper's Figure 1 puts a "Data Hub" at the centre of the ecosystem:
//! DSPs query it for user value before bidding (step 4). Our [`Dmp`] keeps
//! the market's latent knowledge about each user — a heavy-tailed value
//! multiplier plus a count of cookie-sync events — lazily materialised so
//! users only cost memory once they are actually seen in an auction.
//!
//! The value distribution drives Figures 17–19: most users are ordinary
//! (log-normal around 1), while a ~2 % tail of "whales" (incomplete
//! purchases being retargeted, expensive tastes, specialised needs — the
//! paper's §2.3 speculations) is worth ≈5–20× more per impression; the
//! paper's 10–100× *total*-cost outliers emerge when that premium
//! compounds with heavy browsing volume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use yav_types::UserId;

/// Latent market knowledge about one user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserValue {
    /// Multiplicative value factor applied to every valuation for this
    /// user. Median 1.0; heavy upper tail.
    pub factor: f64,
    /// Whether the user sits in the retargeted "whale" tail.
    pub whale: bool,
}

/// The market's user-knowledge store.
#[derive(Debug)]
pub struct Dmp {
    rng: StdRng,
    values: HashMap<UserId, UserValue>,
    /// Fraction of users in the whale tail (paper: ~2 % of users cost
    /// 10–100× the average in total).
    whale_fraction: f64,
    /// Log-normal sigma of the ordinary-user value factor.
    value_sigma: f64,
    cookie_syncs: HashMap<UserId, u32>,
}

impl Dmp {
    /// Creates a DMP with its own deterministic randomness stream.
    pub fn new(seed: u64, whale_fraction: f64, value_sigma: f64) -> Dmp {
        Dmp {
            rng: StdRng::seed_from_u64(seed ^ 0xD11A_0000_0000_0001),
            values: HashMap::new(),
            whale_fraction,
            value_sigma,
            cookie_syncs: HashMap::new(),
        }
    }

    /// The user's latent value, drawing it on first sight.
    pub fn user_value(&mut self, user: UserId) -> UserValue {
        if let Some(v) = self.values.get(&user) {
            return *v;
        }
        let whale = self.rng.gen::<f64>() < self.whale_fraction;
        let base = (self.value_sigma * standard_normal(&mut self.rng)).exp();
        let factor = if whale {
            // ≈8–50× per impression, log-uniform. Combined with the
            // heavy-browsing activity tail this produces the paper's
            // outlier users costing 10–100× the average in *total*
            // (Figure 17's 1 000–10 000 CPM band) without making
            // individual prices unlearnably heavy-tailed — the §5.4
            // model's feature set has no user-value signal, in the paper
            // as here.
            base * 10f64.powf(0.9 + 0.8 * self.rng.gen::<f64>())
        } else {
            base
        };
        let v = UserValue { factor, whale };
        self.values.insert(user, v);
        v
    }

    /// Records one cookie-synchronisation event for a user (SSPs sync
    /// aggressively to enable retargeting, §2.1).
    pub fn record_cookie_sync(&mut self, user: UserId) {
        *self.cookie_syncs.entry(user).or_insert(0) += 1;
    }

    /// Cookie syncs seen for a user so far.
    pub fn cookie_syncs(&self, user: UserId) -> u32 {
        self.cookie_syncs.get(&user).copied().unwrap_or(0)
    }

    /// Number of users materialised so far.
    pub fn known_users(&self) -> usize {
        self.values.len()
    }
}

/// One standard-normal draw via Box–Muller (avoids a rand_distr
/// dependency; two uniforms per call is fine at simulator scale).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_stable_per_user() {
        let mut dmp = Dmp::new(1, 0.02, 0.6);
        let a1 = dmp.user_value(UserId(7));
        let a2 = dmp.user_value(UserId(7));
        assert_eq!(a1, a2);
        assert_eq!(dmp.known_users(), 1);
    }

    #[test]
    fn whale_fraction_respected() {
        let mut dmp = Dmp::new(42, 0.02, 0.6);
        let whales = (0..20_000u32)
            .filter(|&i| dmp.user_value(UserId(i)).whale)
            .count();
        let frac = whales as f64 / 20_000.0;
        assert!((0.012..=0.028).contains(&frac), "whale fraction {frac}");
    }

    #[test]
    fn whales_are_worth_much_more() {
        let mut dmp = Dmp::new(7, 0.02, 0.6);
        let (mut whale_vals, mut normal_vals) = (Vec::new(), Vec::new());
        for i in 0..20_000u32 {
            let v = dmp.user_value(UserId(i));
            if v.whale {
                whale_vals.push(v.factor);
            } else {
                normal_vals.push(v.factor);
            }
        }
        let mw = whale_vals.iter().sum::<f64>() / whale_vals.len() as f64;
        let mn = normal_vals.iter().sum::<f64>() / normal_vals.len() as f64;
        assert!(mw / mn > 8.0, "whales {mw:.2} vs normals {mn:.2}");
    }

    #[test]
    fn ordinary_values_center_on_one() {
        let mut dmp = Dmp::new(9, 0.0, 0.6);
        let mut vals: Vec<f64> = (0..10_000u32)
            .map(|i| dmp.user_value(UserId(i)).factor)
            .collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        let median = vals[vals.len() / 2];
        assert!((0.9..=1.1).contains(&median), "median {median}");
    }

    #[test]
    fn cookie_sync_counters() {
        let mut dmp = Dmp::new(3, 0.02, 0.6);
        assert_eq!(dmp.cookie_syncs(UserId(1)), 0);
        dmp.record_cookie_sync(UserId(1));
        dmp.record_cookie_sync(UserId(1));
        assert_eq!(dmp.cookie_syncs(UserId(1)), 2);
        assert_eq!(dmp.cookie_syncs(UserId(2)), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
