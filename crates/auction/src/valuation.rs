//! The latent price process.
//!
//! Each DSP's decision engine values an impression as a log-normal draw
//! whose location is the sum of feature *log-effects*. The effect tables
//! below are the simulator's world model; they were chosen so that the
//! shapes the paper measures in §4 and §6 emerge from second-price
//! auctions over these valuations:
//!
//! | effect | target artefact |
//! |---|---|
//! | city: big markets lower median / higher variance | Fig. 5 |
//! | daypart: morning premium | Fig. 6 |
//! | weekday: higher maxima, similar medians | Fig. 7 |
//! | OS: iOS premium over Android | Fig. 10 |
//! | IAB category: IAB3 rich … IAB15 poor | Figs. 11, 15 |
//! | slot format: MPU/Monster-MPU dearest, area ≠ price | Figs. 13, 14 |
//! | app inventory ≈2.6× web | §4.4 |
//! | encrypted-channel premium ≈1.7× | §6.1, Fig. 16 |
//! | year-over-year drift (2015 → 2016 campaigns) | §6.2 time correction |
//! | heavy-tailed per-user value | Fig. 17–19 |
//!
//! Downstream code never reads these tables — the analyzer and PME see
//! only auction outcomes, exactly like the paper's observer.

use crate::request::AdRequest;
use serde::{Deserialize, Serialize};
use yav_types::{
    AdSlotSize, City, DayOfWeek, IabCategory, InteractionType, Os, SimTime, TimeOfDay,
};

/// Multiplicative feature-effect tables feeding bid valuations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValuationModel {
    /// Median bid (CPM) for the reference context: Madrid smartphone
    /// Android mobile-web MPU News-site afternoon weekday, average user.
    pub base_median_cpm: f64,
    /// Log-scale dispersion of individual DSP valuations.
    pub sigma: f64,
    /// Extra dispersion applied on weekdays (Fig. 7: similar medians,
    /// fatter weekday upper tail).
    pub weekday_sigma_bonus: f64,
    /// Multiplier applied when the winning integration reports its price
    /// encrypted (the confidential-channel premium, §2.3/§6.1).
    pub encrypted_premium: f64,
    /// Multiplicative drift per simulated year after the 2015 epoch.
    pub yearly_drift: f64,
}

impl Default for ValuationModel {
    fn default() -> ValuationModel {
        ValuationModel {
            base_median_cpm: 0.17,
            sigma: 0.06,
            weekday_sigma_bonus: 0.03,
            encrypted_premium: 1.7,
            yearly_drift: 1.12,
        }
    }
}

impl ValuationModel {
    /// Log-location of the valuation distribution for a request, before
    /// any DSP-specific offsets. `user_value` is the DMP's latent
    /// per-user multiplier.
    pub fn mu(&self, req: &AdRequest, user_value: f64) -> f64 {
        self.base_median_cpm.ln()
            + city_effect(req.city).ln()
            + daypart_effect(req.time.time_of_day()).ln()
            + weekday_effect(req.time.day_of_week()).ln()
            + os_effect(req.os).ln()
            + interaction_effect(req.interaction).ln()
            + iab_effect(req.iab).ln()
            + slot_effect(req.slot).ln()
            + publisher_effect(&req.publisher_name).ln()
            + self.drift(req.time).ln()
            + user_value.max(1e-6).ln()
            + 0.30 * req.interest_match // retargeting-ish: good matches bid up
    }

    /// Log-scale dispersion for a request.
    pub fn sigma(&self, req: &AdRequest) -> f64 {
        let weekday = if req.time.is_weekend() {
            0.0
        } else {
            self.weekday_sigma_bonus
        };
        self.sigma + city_sigma_bonus(req.city) + weekday
    }

    /// The secular price drift between the 2015 epoch and `time`.
    pub fn drift(&self, time: SimTime) -> f64 {
        let years = time.minutes() as f64 / (365.0 * 24.0 * 60.0);
        self.yearly_drift.powf(years)
    }

    /// The premium factor for an encrypted notification channel.
    pub fn encrypted_factor(&self, encrypted: bool) -> f64 {
        if encrypted {
            self.encrypted_premium
        } else {
            1.0
        }
    }
}

/// City median effect: larger markets clear slightly *lower* medians
/// (deeper supply), Fig. 5. Roughly −12 % per decade of population above
/// 100 k.
pub fn city_effect(city: City) -> f64 {
    let pop = city.population() as f64;
    (pop / 100_000.0).powf(-0.055)
}

/// City dispersion bonus: big-city auctions fluctuate more (Fig. 5's wide
/// whiskers in Madrid/Barcelona).
pub fn city_sigma_bonus(city: City) -> f64 {
    // Scales 0 → 0.06 from the smallest (Torello) to the largest (Madrid)
    // panel city, linear in log-population.
    let pop = city.population() as f64;
    let span = (3_165_000.0f64 / 14_000.0).ln();
    0.06 * ((pop / 14_000.0).ln().max(0.0) / span)
}

/// Daypart effect (Fig. 6: early morning through noon runs hot).
pub fn daypart_effect(tod: TimeOfDay) -> f64 {
    match tod {
        TimeOfDay::Night => 0.92,
        TimeOfDay::EarlyMorning => 1.18,
        TimeOfDay::Morning => 1.35,
        TimeOfDay::Afternoon => 1.00,
        TimeOfDay::Evening => 0.97,
        TimeOfDay::LateEvening => 0.82,
    }
}

/// Day-of-week effect (Fig. 7: medians close; Mondays a touch dearer,
/// weekends softer).
pub fn weekday_effect(dow: DayOfWeek) -> f64 {
    match dow {
        DayOfWeek::Monday => 1.08,
        DayOfWeek::Tuesday => 1.04,
        DayOfWeek::Wednesday => 1.03,
        DayOfWeek::Thursday => 1.03,
        DayOfWeek::Friday => 1.02,
        DayOfWeek::Saturday => 0.93,
        DayOfWeek::Sunday => 0.97,
    }
}

/// OS effect (Fig. 10: iOS audiences draw higher prices).
pub fn os_effect(os: Os) -> f64 {
    match os {
        Os::Ios => 1.48,
        Os::Android => 1.0,
        Os::WindowsMobile => 0.82,
        Os::Other => 0.72,
    }
}

/// Channel effect (§4.4: apps draw ≈2.6× the web price).
pub fn interaction_effect(it: InteractionType) -> f64 {
    match it {
        InteractionType::MobileApp => 2.6,
        InteractionType::MobileWeb => 1.0,
    }
}

/// IAB category effect (Figs. 11, 15: Business & Marketing rich, Science
/// poor; the rest graded between).
pub fn iab_effect(iab: IabCategory) -> f64 {
    match iab {
        IabCategory::Business => 4.0,
        IabCategory::PersonalFinance => 2.6,
        IabCategory::Automotive => 1.7,
        IabCategory::Travel => 1.55,
        IabCategory::Shopping => 1.45,
        IabCategory::Careers => 1.25,
        IabCategory::Technology => 1.2,
        IabCategory::Health => 1.1,
        IabCategory::News => 1.0,
        IabCategory::HomeGarden => 0.95,
        IabCategory::Sports => 0.9,
        IabCategory::StyleFashion => 0.85,
        IabCategory::ArtsEntertainment => 0.8,
        IabCategory::FoodDrink => 0.75,
        IabCategory::Hobbies => 0.7,
        IabCategory::Society => 0.6,
        IabCategory::Education => 0.45,
        IabCategory::Science => 0.15,
    }
}

/// Idiosyncratic per-publisher price level: real inventory commands
/// publisher-specific premiums beyond its IAB category (brand safety,
/// viewability, audience quality). Derived deterministically from the
/// publisher name via an Irwin-Hall approximate normal, log-scale sigma
/// ≈ 0.12. This latent is what makes the paper's exact-publisher model
/// variant (§5.4) outperform the IAB model in-campaign — i.e. overfit.
pub fn publisher_effect(name: &str) -> f64 {
    const SIGMA: f64 = 0.12;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    // Irwin-Hall: sum of 12 uniforms, minus 6, is ~N(0,1).
    let mut z = -6.0f64;
    for _ in 0..12 {
        h = h
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        z += (h >> 11) as f64 / (1u64 << 53) as f64;
    }
    (SIGMA * z).exp()
}

/// Slot-format effect (Fig. 13: the MPU family clears highest; area does
/// not order prices — the 120×600 skyscraper is big and cheap).
pub fn slot_effect(slot: AdSlotSize) -> f64 {
    match slot {
        AdSlotSize::S300x250 => 1.00, // MPU: the reference, and the peak
        AdSlotSize::S300x600 => 0.85, // Monster MPU: runner-up
        AdSlotSize::S160x600 => 0.62,
        AdSlotSize::S336x280 => 0.72,
        AdSlotSize::S728x90 => 0.55,
        AdSlotSize::S468x60 => 0.45,
        AdSlotSize::S120x600 => 0.42,
        AdSlotSize::S320x50 => 0.33,
        AdSlotSize::S300x50 => 0.30,
        AdSlotSize::S200x200 => 0.50,
        AdSlotSize::S316x150 => 0.48,
        AdSlotSize::S280x250 => 0.80,
        AdSlotSize::S800x130 => 0.58,
        AdSlotSize::S400x300 => 0.78,
        // Full/half-screen interstitials command premiums.
        AdSlotSize::S320x480 | AdSlotSize::S480x320 => 1.15,
        AdSlotSize::S768x1024 | AdSlotSize::S1024x768 => 1.25,
        AdSlotSize::S350x600 => 0.80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::{Adx, DeviceType, PublisherId, UserId};

    fn req_at(time: SimTime) -> AdRequest {
        AdRequest {
            time,
            user: UserId(0),
            city: City::Madrid,
            os: Os::Android,
            device: DeviceType::Smartphone,
            interaction: InteractionType::MobileWeb,
            publisher: PublisherId(0),
            publisher_name: "news.example".into(),
            iab: IabCategory::News,
            slot: AdSlotSize::S300x250,
            adx: Adx::MoPub,
            interest_match: 0.0,
        }
    }

    #[test]
    fn reference_context_hits_base_median() {
        let m = ValuationModel::default();
        // Afternoon weekday (epoch + drift≈1) Madrid Android web MPU News.
        let t = SimTime::from_ymd_hm(2015, 1, 7, 13, 0); // Wednesday afternoon
        let mu = m.mu(&req_at(t), 1.0);
        let expected = m.base_median_cpm
            * city_effect(City::Madrid)
            * daypart_effect(TimeOfDay::Afternoon)
            * weekday_effect(DayOfWeek::Wednesday)
            * publisher_effect("news.example")
            * m.drift(t);
        assert!((mu.exp() - expected).abs() < 1e-9);
    }

    #[test]
    fn ios_beats_android() {
        assert!(os_effect(Os::Ios) > os_effect(Os::Android));
    }

    #[test]
    fn apps_cost_2_6x_web() {
        assert!((interaction_effect(InteractionType::MobileApp) - 2.6).abs() < 1e-12);
    }

    #[test]
    fn iab3_rich_iab15_poor() {
        let effects: Vec<f64> = IabCategory::ALL.iter().map(|&c| iab_effect(c)).collect();
        let max = effects.iter().cloned().fold(f64::MIN, f64::max);
        let min = effects.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(iab_effect(IabCategory::Business), max);
        assert_eq!(iab_effect(IabCategory::Science), min);
        // The paper's Fig. 11 spread: a decade or more between them.
        assert!(max / min > 10.0);
    }

    #[test]
    fn area_does_not_order_price() {
        // §4.4's punchline: the giant skyscraper is cheaper than the MPU.
        assert!(AdSlotSize::S120x600.area() > AdSlotSize::S300x250.area() * 95 / 100);
        assert!(slot_effect(AdSlotSize::S120x600) < slot_effect(AdSlotSize::S300x250));
        // And the MPU family tops the table.
        for s in AdSlotSize::FIGURE13 {
            assert!(slot_effect(s) <= slot_effect(AdSlotSize::S300x250));
        }
    }

    #[test]
    fn big_city_lower_median_higher_sigma() {
        assert!(city_effect(City::Madrid) < city_effect(City::Torello));
        assert!(city_sigma_bonus(City::Madrid) > city_sigma_bonus(City::Torello));
        let m = ValuationModel::default();
        let t = SimTime::from_ymd_hm(2015, 6, 6, 13, 0); // Saturday
        let mut r = req_at(t);
        r.city = City::Madrid;
        let sigma_madrid = m.sigma(&r);
        r.city = City::Torello;
        assert!(sigma_madrid > m.sigma(&r));
    }

    #[test]
    fn morning_runs_hot() {
        assert!(daypart_effect(TimeOfDay::Morning) > daypart_effect(TimeOfDay::LateEvening));
        assert!(daypart_effect(TimeOfDay::EarlyMorning) > daypart_effect(TimeOfDay::Night));
    }

    #[test]
    fn weekday_sigma_fatter() {
        let m = ValuationModel::default();
        let weekday = req_at(SimTime::from_ymd_hm(2015, 3, 2, 13, 0)); // Monday
        let weekend = req_at(SimTime::from_ymd_hm(2015, 3, 1, 13, 0)); // Sunday
        assert!(m.sigma(&weekday) > m.sigma(&weekend));
    }

    #[test]
    fn drift_compounds() {
        let m = ValuationModel::default();
        let d2015 = m.drift(SimTime::EPOCH);
        let d2016 = m.drift(SimTime::from_ymd_hm(2016, 1, 1, 0, 0));
        assert!((d2015 - 1.0).abs() < 1e-12);
        assert!((d2016 - 1.12).abs() < 0.01);
    }

    #[test]
    fn encrypted_premium_factor() {
        let m = ValuationModel::default();
        assert_eq!(m.encrypted_factor(false), 1.0);
        assert!((m.encrypted_factor(true) - 1.7).abs() < 1e-12);
    }

    #[test]
    fn publisher_effect_is_stable_and_bounded() {
        let a = publisher_effect("dailynoticias1.example");
        let b = publisher_effect("dailynoticias1.example");
        assert_eq!(a, b, "deterministic per publisher");
        assert_ne!(a, publisher_effect("dailynoticias2.example"));
        // Collect the spread over many names: roughly log-normal(0, 0.12).
        let vals: Vec<f64> = (0..2000)
            .map(|i| publisher_effect(&format!("pub{i}.example")).ln())
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.12).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn interest_match_raises_mu() {
        let m = ValuationModel::default();
        let t = SimTime::from_ymd_hm(2015, 1, 7, 13, 0);
        let mut r = req_at(t);
        let low = m.mu(&r, 1.0);
        r.interest_match = 1.0;
        assert!(m.mu(&r, 1.0) > low);
    }
}
