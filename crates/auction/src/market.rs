//! The market: Vickrey auctions end to end.
//!
//! [`Market`] wires the DSP roster, the DMP, the integration matrix and
//! the valuation model into a single deterministic auction engine. One
//! call to [`Market::run_auction`] plays out steps 3–7 of the paper's
//! Figure 1: bid solicitation, second-price resolution, charge-price
//! computation and notification-URL emission.

use crate::config::MarketConfig;
use crate::dsp::DspProfile;
use crate::exchange::{notification, IntegrationMatrix};
use crate::profile::{standard_normal, Dmp};
use crate::request::AdRequest;
use crate::valuation::ValuationModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yav_nurl::fields::{NurlFields, NurlFieldsRef, PricePayload};
use yav_nurl::template;
use yav_nurl::url::Url;
use yav_types::{Adx, AuctionId, CampaignId, Cpm, DspId, ImpressionId, PriceVisibility};

/// A probing campaign's standing order: bid up to `max_bid` through `dsp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeBid {
    /// The DSP executing the campaign.
    pub dsp: DspId,
    /// Budget-safeguard cap (the paper gave its DSP an upper bound on the
    /// bidding CPM, §5.3).
    pub max_bid: Cpm,
    /// The campaign the impressions book against.
    pub campaign: CampaignId,
}

/// What the campaign's performance report records for one won impression.
/// Crucially it contains the *true* charge price even on encrypted
/// channels — the buyer holds the decryption keys. This is exactly the
/// ground-truth channel the paper's probing campaigns exploit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeWin {
    /// True charge price from the buyer-side report.
    pub charge: Cpm,
    /// How the browser-visible notification reported the price.
    pub visibility: PriceVisibility,
    /// The notification payload as emitted.
    pub fields: NurlFields,
    /// The notification URL the user's browser fired.
    pub nurl: Url,
}

/// One resolved auction, with simulator-side ground truth attached.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// The winning bidder.
    pub winner: DspId,
    /// The winner's bid.
    pub bid: Cpm,
    /// Ground-truth charge price (second-highest bid, floored).
    pub charge: Cpm,
    /// Whether the notification carried the price encrypted.
    pub visibility: PriceVisibility,
    /// Typed notification payload.
    pub fields: NurlFields,
    /// The notification URL fired through the user's browser.
    pub nurl: Url,
}

/// Auction resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum AuctionResult {
    /// Fewer than the required bids arrived; the slot goes to backfill
    /// (no RTB notification fires).
    NoSale,
    /// The slot sold; a notification fired.
    Sale(Box<AuctionOutcome>),
}

impl AuctionResult {
    /// The outcome, if the slot sold.
    pub fn sale(&self) -> Option<&AuctionOutcome> {
        match self {
            AuctionResult::Sale(o) => Some(o),
            AuctionResult::NoSale => None,
        }
    }
}

/// A resolved sale on the allocation-free path: everything the streaming
/// generator needs to book ground truth, with the notification URL already
/// rendered into the caller's buffer instead of materialised as
/// [`NurlFields`] + [`Url`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaleLite {
    /// The winning bidder.
    pub winner: DspId,
    /// The winner's bid.
    pub bid: Cpm,
    /// Ground-truth charge price (second-highest bid, floored).
    pub charge: Cpm,
    /// Whether the notification carried the price encrypted.
    pub visibility: PriceVisibility,
    /// Impression identifier.
    pub impression: ImpressionId,
    /// Auction identifier.
    pub auction: AuctionId,
}

/// Everything [`Market::resolve_core`] decides before the notification
/// payload takes shape — shared by the owned and borrowed emitters so the
/// RNG stream, id counters, IV counters and telemetry stay identical.
struct ResolvedCore {
    winner: DspId,
    winner_bid: Cpm,
    charge: Cpm,
    visibility: PriceVisibility,
    impression: ImpressionId,
    auction: AuctionId,
    campaign: Option<CampaignId>,
    latency_ms: u32,
    price: PricePayload,
}

/// Pre-resolved `auction.market.*` metric handles. Auctions run millions
/// of times per window; looking the handles up by name (and formatting
/// the per-exchange histogram name) on every call was both a registry
/// lock and a heap allocation on the hot path.
struct MarketMetrics {
    runs: yav_telemetry::Counter,
    no_sale: yav_telemetry::Counter,
    sold_encrypted: yav_telemetry::Counter,
    sold_cleartext: yav_telemetry::Counter,
    /// Wall time per resolved auction, for the bench's phase breakdown.
    time_us: yav_telemetry::Histogram,
    /// `auction.market.charge_cpm.{adx}`, indexed by [`Adx::index`].
    charge_cpm: [yav_telemetry::Histogram; 17],
}

impl MarketMetrics {
    fn resolve() -> MarketMetrics {
        MarketMetrics {
            runs: yav_telemetry::counter("auction.market.runs"),
            no_sale: yav_telemetry::counter("auction.market.no_sale"),
            sold_encrypted: yav_telemetry::counter("auction.market.sold_encrypted"),
            sold_cleartext: yav_telemetry::counter("auction.market.sold_cleartext"),
            time_us: yav_telemetry::histogram("auction.market.us"),
            charge_cpm: std::array::from_fn(|i| {
                // yav-lint: allow(alloc-in-gen-path) — per-shard metric-handle resolution
                yav_telemetry::histogram(&format!(
                    "auction.market.charge_cpm.{}",
                    // yav-lint: allow(alloc-in-gen-path) — per-shard metric-handle resolution
                    Adx::from_index(i).name().to_ascii_lowercase()
                ))
            }),
        }
    }
}

/// The shard-invariant market structure: DSP roster, integration matrix
/// (with its derived per-pair price keys), cached participation weight.
///
/// Building this is the expensive part of standing up a market — the
/// matrix derives two HMAC-SHA256 keys per (exchange, DSP) pair, which
/// at the default 17 × 60 roster costs milliseconds. It is also a pure
/// function of `config`, identical for every shard. The parallel world
/// builders therefore build one template per run and stamp per-shard
/// markets out of it with [`MarketTemplate::shard`]: a clone of the
/// shared structure (a memcpy of already-derived keys) plus the shard's
/// own randomness streams, id namespaces and scratch.
#[derive(Clone)]
pub struct MarketTemplate {
    config: MarketConfig,
    dsps: Vec<DspProfile>,
    total_weight: f64,
    integrations: IntegrationMatrix,
}

impl MarketTemplate {
    /// Builds the shared structure once from configuration.
    pub fn new(config: MarketConfig) -> MarketTemplate {
        let dsps = DspProfile::roster(config.n_dsps);
        let integrations = IntegrationMatrix::build(
            config.seed,
            &dsps,
            config.migration_rate_major,
            config.migration_rate_minor,
        );
        let total_weight = dsps.iter().map(|d| d.participation).sum();
        MarketTemplate {
            config,
            dsps,
            total_weight,
            integrations,
        }
    }

    /// Stamps the market for one logical shard — bit-for-bit the market
    /// `Market::new_shard(config, shard)` builds, without re-deriving
    /// the shared structure. Only the auction and DMP randomness streams
    /// derive from `(config.seed, shard)`, and auction/impression ids
    /// live in a per-shard namespace so merged streams never collide.
    pub fn shard(&self, shard: u64) -> Market {
        let config = self.config.clone();
        let mix = if shard == 0 {
            0
        } else {
            yav_exec::derive_seed(config.seed, shard)
        };
        let dmp = Dmp::new(
            config.seed ^ mix,
            config.whale_fraction,
            config.user_value_sigma,
        );
        let rng = StdRng::seed_from_u64(config.seed ^ 0x3A2B_0000_0000_0003 ^ mix);
        Market {
            config,
            dsps: self.dsps.clone(),
            total_weight: self.total_weight,
            dmp,
            integrations: self.integrations.clone(),
            rng,
            next_auction: shard << 32,
            next_impression: shard << 32,
            metrics: MarketMetrics::resolve(),
            // yav-lint: allow(alloc-in-gen-path) — per-shard bid scratch, reused across auctions
            participants: Vec::with_capacity(16),
            // yav-lint: allow(alloc-in-gen-path) — per-shard bid scratch, reused across auctions
            bids: Vec::with_capacity(16),
        }
    }
}

/// The deterministic RTB market.
pub struct Market {
    config: MarketConfig,
    dsps: Vec<DspProfile>,
    /// Cached `Σ participation` over the roster — invariant per market.
    total_weight: f64,
    dmp: Dmp,
    integrations: IntegrationMatrix,
    rng: StdRng,
    next_auction: u64,
    next_impression: u64,
    metrics: MarketMetrics,
    /// Scratch for the turnout draw, reused across auctions.
    participants: Vec<usize>,
    /// Scratch for the collected bids, reused across auctions.
    bids: Vec<(DspId, Cpm)>,
}

impl Market {
    /// Builds a market from configuration. Everything downstream is a
    /// pure function of `config` (including its seed).
    pub fn new(config: MarketConfig) -> Market {
        Market::new_shard(config, 0)
    }

    /// Builds one logical shard of the market, for the parallel world
    /// builders. World *structure* — the DSP roster, the integration
    /// matrix (and thus the Figure-2 encryption drift), the valuation
    /// model — is a function of `config` alone and identical across
    /// shards; only the auction and DMP randomness streams derive from
    /// `(config.seed, shard)`, and auction/impression ids live in a
    /// per-shard namespace so merged streams never collide. Shard 0 is
    /// bit-for-bit the market [`Market::new`] builds.
    pub fn new_shard(config: MarketConfig, shard: u64) -> Market {
        MarketTemplate::new(config).shard(shard)
    }

    /// The valuation model in force.
    pub fn valuation(&self) -> &ValuationModel {
        &self.config.valuation
    }

    /// The DMP (market-side user knowledge).
    pub fn dmp_mut(&mut self) -> &mut Dmp {
        &mut self.dmp
    }

    /// Fraction of integrations reporting encrypted at `time` (Figure 2).
    pub fn encrypted_pair_share(&self, time: yav_types::SimTime) -> f64 {
        self.integrations.encrypted_pair_share(time)
    }

    /// Runs one organic auction (no probing campaign involved).
    pub fn run_auction(&mut self, req: &AdRequest) -> AuctionResult {
        let (result, _) = self.resolve(req, None);
        result
    }

    /// Runs one auction with a probing campaign participating. The probe
    /// bids its cap (the dominant strategy under Vickrey rules); when it
    /// wins, the returned [`ProbeWin`] carries buyer-side ground truth.
    pub fn run_auction_with_probe(
        &mut self,
        req: &AdRequest,
        probe: &ProbeBid,
    ) -> (AuctionResult, Option<ProbeWin>) {
        self.resolve(req, Some(probe))
    }

    /// Runs one organic auction on the allocation-free path. The decision
    /// process — RNG stream, id/IV counters, telemetry — is shared with
    /// [`Market::run_auction`]; the only difference is the output shape:
    /// the notification URL is rendered straight into `nurl_out` (cleared
    /// first) and the sale comes back as a plain-old-data [`SaleLite`],
    /// so a resolved auction touches the heap only to grow reused
    /// buffers. `None` means no sale (backfill), in which case `nurl_out`
    /// is left cleared.
    pub fn run_auction_into(&mut self, req: &AdRequest, nurl_out: &mut String) -> Option<SaleLite> {
        nurl_out.clear();
        let core = self.resolve_core(req, None)?;
        let fields = NurlFieldsRef {
            adx: req.adx,
            dsp: core.winner,
            price: core.price,
            bid_price: Some(core.winner_bid),
            impression: core.impression,
            auction: core.auction,
            campaign: core.campaign,
            slot: Some(req.slot),
            publisher: Some(&req.publisher_name),
            country: Some("ES"),
            latency_ms: Some(core.latency_ms),
            ad_domain: None,
        };
        template::render_into(&fields, nurl_out);
        Some(SaleLite {
            winner: core.winner,
            bid: core.winner_bid,
            charge: core.charge,
            visibility: core.visibility,
            impression: core.impression,
            auction: core.auction,
        })
    }

    /// Core resolution: collect bids, apply Vickrey rules, emit the nURL.
    fn resolve(
        &mut self,
        req: &AdRequest,
        probe: Option<&ProbeBid>,
    ) -> (AuctionResult, Option<ProbeWin>) {
        let _span = yav_telemetry::span!("auction.market.run");
        let Some(core) = self.resolve_core(req, probe) else {
            return (AuctionResult::NoSale, None);
        };
        let fields = notification(
            core.winner,
            core.price,
            core.winner_bid,
            req,
            core.impression,
            core.auction,
            core.campaign,
            core.latency_ms,
        );
        let nurl = template::emit(&fields);

        let outcome = AuctionOutcome {
            winner: core.winner,
            bid: core.winner_bid,
            charge: core.charge,
            visibility: core.visibility,
            fields: fields.clone(),
            nurl: nurl.clone(),
        };

        let probe_win = probe.filter(|p| p.dsp == core.winner).map(|_| ProbeWin {
            charge: core.charge,
            visibility: core.visibility,
            fields,
            nurl,
        });

        // yav-lint: allow(alloc-in-gen-path) — owned emitter for the materialising builder; the streamed sink uses run_auction_into
        (AuctionResult::Sale(Box::new(outcome)), probe_win)
    }

    /// Everything up to (and including) price encoding: bid solicitation,
    /// Vickrey resolution, id assignment and telemetry. Both emitters
    /// call this, so their observable side effects are identical.
    fn resolve_core(&mut self, req: &AdRequest, probe: Option<&ProbeBid>) -> Option<ResolvedCore> {
        let _t = self.metrics.time_us.time_us();
        self.metrics.runs.inc();
        let user_value = self.dmp.user_value(req.user).factor;
        let mu_base = self.config.valuation.mu(req, user_value);

        // Which DSPs show up: a stable-sized panel of bidders drawn
        // without replacement, weighted by each profile's participation
        // propensity. Real exchanges solicit a fairly constant set of
        // integrated bidders per request; a Binomial turnout would inject
        // artificial second-price variance through the order statistic.
        // A DSP executing a probing campaign routes the campaign's bid
        // instead of its organic demand: one DSP, one bid per auction.
        // Without this, the probe's DSP could "win" with an uncapped
        // organic bid and the impression would book against the campaign
        // at a charge above its max-bid safeguard.
        let excluded = probe.map(|p| p.dsp);
        let eligible = self.dsps.len() - usize::from(excluded.is_some());
        let turnout = {
            let jitter = (self.rng.gen_range(0..3) as i64 - 1).max(-1);
            ((self.config.mean_bidders.round() as i64 + jitter).max(2) as usize).min(eligible)
        };
        self.participants.clear();
        while self.participants.len() < turnout {
            let mut x = self.rng.gen::<f64>() * self.total_weight;
            let mut pick = 0usize;
            for (i, d) in self.dsps.iter().enumerate() {
                x -= d.participation;
                if x <= 0.0 {
                    pick = i;
                    break;
                }
            }
            if Some(self.dsps[pick].id) == excluded {
                continue;
            }
            if !self.participants.contains(&pick) {
                self.participants.push(pick);
            }
        }

        self.bids.clear();
        for &pi in &self.participants {
            let dsp = &self.dsps[pi];
            // The confidential-channel premium (§2.3's explanation for
            // dearer encrypted prices). It is an *exchange-level*
            // phenomenon: encrypted-house exchanges host the high-value
            // confidential demand, so every bidder there values the
            // inventory up — which leaves relative competition unchanged
            // and lifts the clearing price by the premium. A bidder whose
            // individual integration migrated to encryption on a
            // cleartext exchange is hiding its strategy, not outbidding
            // the room: it gets only a small edge.
            let premium = if req.adx.house_style() == PriceVisibility::Encrypted {
                self.config.valuation.encrypted_factor(true).ln()
            } else {
                let migrated = self
                    .integrations
                    .get(req.adx, dsp.id)
                    .map(|i| i.visibility(req.time) == PriceVisibility::Encrypted)
                    .unwrap_or(false);
                if migrated {
                    1.15f64.ln()
                } else {
                    0.0
                }
            };
            let mu = mu_base + dsp.mu_offset + dsp.match_premium * req.interest_match + premium;
            let sigma = self.config.valuation.sigma(req);
            let bid = (mu + sigma * standard_normal(&mut self.rng)).exp();
            self.bids.push((dsp.id, Cpm::from_f64(bid)));
        }

        if let Some(p) = probe {
            self.bids.push((p.dsp, p.max_bid));
        }

        // Vickrey: winner pays max(second bid, floor).
        self.bids.sort_by_key(|&(_, bid)| std::cmp::Reverse(bid));
        if self.bids.is_empty() || (self.bids.len() == 1 && probe.is_none()) {
            // A lone organic bidder gets backfilled in our market: real
            // exchanges need competition or a deal floor; probing
            // campaigns however buy remnant inventory at the floor.
            if probe.is_none() {
                self.metrics.no_sale.inc();
                return None;
            }
        }
        let (winner, winner_bid) = self.bids[0];
        let second = self
            .bids
            .get(1)
            .map(|&(_, b)| b)
            .unwrap_or(self.config.floor);
        let charge = second.max(self.config.floor);

        let auction = AuctionId(self.next_auction);
        let impression = ImpressionId(self.next_impression);
        self.next_auction += 1;
        self.next_impression += 1;

        let campaign = probe.filter(|p| p.dsp == winner).map(|p| p.campaign);
        let latency_ms = self.rng.gen_range(40..220);

        let integration = self
            .integrations
            .get_mut(req.adx, winner)
            .expect("winner always has an integration on its exchange");
        let visibility = integration.visibility(req.time);
        self.metrics.charge_cpm[req.adx.index()].observe(charge.as_f64());
        match visibility {
            PriceVisibility::Encrypted => self.metrics.sold_encrypted.inc(),
            PriceVisibility::Cleartext => self.metrics.sold_cleartext.inc(),
        }
        let price = integration.encode_price(charge, req.time);

        Some(ResolvedCore {
            winner,
            winner_bid,
            charge,
            visibility,
            impression,
            auction,
            campaign,
            latency_ms,
            price,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::{
        AdSlotSize, Adx, City, DeviceType, IabCategory, InteractionType, Os, PublisherId, SimTime,
        UserId,
    };

    fn request(adx: Adx, time: SimTime) -> AdRequest {
        AdRequest {
            time,
            user: UserId(5),
            city: City::Madrid,
            os: Os::Android,
            device: DeviceType::Smartphone,
            interaction: InteractionType::MobileWeb,
            publisher: PublisherId(1),
            publisher_name: "elperiodico.example".into(),
            iab: IabCategory::News,
            slot: AdSlotSize::S300x250,
            adx,
            interest_match: 0.3,
        }
    }

    fn market() -> Market {
        Market::new(MarketConfig::default())
    }

    #[test]
    fn auctions_resolve_and_emit_parseable_nurls() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2015, 3, 10, 11, 0);
        let mut sales = 0;
        for i in 0..200 {
            let mut req = request(Adx::MoPub, t.plus_minutes(i));
            req.user = UserId(i as u32 % 20);
            if let AuctionResult::Sale(o) = m.run_auction(&req) {
                sales += 1;
                let parsed = template::parse(&o.nurl).unwrap().unwrap();
                assert_eq!(parsed, o.fields);
                assert!(o.charge <= o.bid, "charge price cannot exceed the bid");
                assert!(o.charge >= MarketConfig::default().floor);
            }
        }
        assert!(sales > 150, "most auctions should clear, got {sales}");
    }

    #[test]
    fn vickrey_charge_below_winner_bid() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2015, 6, 1, 10, 0);
        for i in 0..100 {
            let req = request(Adx::Adnxs, t.plus_minutes(i * 7));
            if let AuctionResult::Sale(o) = m.run_auction(&req) {
                assert!(o.charge <= o.bid);
            }
        }
    }

    #[test]
    fn encrypted_house_reports_encrypted() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2015, 2, 2, 9, 0);
        let req = request(Adx::DoubleClick, t);
        for _ in 0..20 {
            if let AuctionResult::Sale(o) = m.run_auction(&req) {
                assert_eq!(o.visibility, PriceVisibility::Encrypted);
                assert!(o.fields.price.encrypted().is_some());
            }
        }
    }

    #[test]
    fn probe_at_high_cap_wins_and_reports_truth() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2016, 5, 10, 10, 0);
        let probe = ProbeBid {
            dsp: DspId(2),
            max_bid: Cpm::from_whole(500),
            campaign: CampaignId(7),
        };
        let mut wins = 0;
        for i in 0..50 {
            let req = request(Adx::OpenX, t.plus_minutes(i * 3));
            let (result, win) = m.run_auction_with_probe(&req, &probe);
            let outcome = result.sale().expect("probe guarantees a sale");
            if let Some(w) = win {
                wins += 1;
                assert_eq!(outcome.charge, w.charge);
                assert_eq!(w.visibility, PriceVisibility::Encrypted);
                // The browser-visible nURL hides the price; the report has it.
                assert!(w.fields.price.encrypted().is_some());
                assert_eq!(w.fields.campaign, Some(CampaignId(7)));
            }
        }
        assert!(
            wins >= 48,
            "a 500-CPM cap should nearly always win, got {wins}"
        );
    }

    #[test]
    fn probe_charge_is_competitive_price_not_cap() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2016, 6, 1, 12, 0);
        let probe = ProbeBid {
            dsp: DspId(0),
            max_bid: Cpm::from_whole(1000),
            campaign: CampaignId(1),
        };
        let req = request(Adx::MoPub, t);
        let (_, win) = m.run_auction_with_probe(&req, &probe);
        let w = win.expect("cap of 1000 CPM wins");
        assert!(
            w.charge < Cpm::from_whole(100),
            "charge {} should reflect competition, not the cap",
            w.charge
        );
    }

    #[test]
    fn determinism_same_seed_same_outcomes() {
        let run = || {
            let mut m = market();
            let t = SimTime::from_ymd_hm(2015, 4, 4, 16, 0);
            (0..50)
                .filter_map(|i| {
                    m.run_auction(&request(Adx::MoPub, t.plus_minutes(i)))
                        .sale()
                        .map(|o| o.charge)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shard_zero_is_the_legacy_market() {
        let t = SimTime::from_ymd_hm(2015, 4, 4, 16, 0);
        let run = |mut m: Market| {
            (0..50)
                .filter_map(|i| {
                    m.run_auction(&request(Adx::MoPub, t.plus_minutes(i)))
                        .sale()
                        .map(|o| (o.charge, o.winner, o.fields.impression))
                })
                .collect::<Vec<_>>()
        };
        let legacy = run(Market::new(MarketConfig::default()));
        let shard0 = run(Market::new_shard(MarketConfig::default(), 0));
        assert_eq!(legacy, shard0);
    }

    #[test]
    fn shards_share_structure_but_not_randomness() {
        let t = SimTime::from_ymd_hm(2015, 4, 4, 16, 0);
        let m0 = Market::new_shard(MarketConfig::default(), 0);
        let m7 = Market::new_shard(MarketConfig::default(), 7);
        // Structure (the integration matrix's encryption drift) is shared…
        assert_eq!(m0.encrypted_pair_share(t), m7.encrypted_pair_share(t));
        // …while auction randomness and id namespaces are not.
        let charges = |mut m: Market| {
            (0..30)
                .filter_map(|i| {
                    m.run_auction(&request(Adx::MoPub, t.plus_minutes(i)))
                        .sale()
                        .map(|o| o.charge)
                })
                .collect::<Vec<_>>()
        };
        let ids = |mut m: Market| {
            m.run_auction(&request(Adx::MoPub, t))
                .sale()
                .map(|o| o.fields.impression)
                .unwrap()
        };
        assert_ne!(
            charges(Market::new_shard(MarketConfig::default(), 0)),
            charges(Market::new_shard(MarketConfig::default(), 7))
        );
        assert_eq!(ids(m7).0 >> 32, 7, "shard id namespace");
        assert_eq!(ids(m0).0 >> 32, 0);
    }

    #[test]
    fn borrowed_auction_path_matches_owned() {
        // Two identically-seeded markets, one driven through the owned
        // API and one through the allocation-free path: every outcome —
        // including the rendered nURL bytes — must agree.
        let t = SimTime::from_ymd_hm(2015, 4, 4, 16, 0);
        let mut owned = market();
        let mut borrowed = market();
        let mut buf = String::new();
        let mut sales = 0;
        for i in 0usize..200 {
            let mut req = request(Adx::from_index(i % 17), t.plus_minutes(i as i64 * 11));
            req.user = UserId(i as u32 % 20);
            let a = owned.run_auction(&req);
            let b = borrowed.run_auction_into(&req, &mut buf);
            match (a, b) {
                (AuctionResult::Sale(o), Some(s)) => {
                    sales += 1;
                    assert_eq!(buf, o.nurl.to_string(), "nURL bytes at {i}");
                    assert_eq!(s.winner, o.winner);
                    assert_eq!(s.bid, o.bid);
                    assert_eq!(s.charge, o.charge);
                    assert_eq!(s.visibility, o.visibility);
                    assert_eq!(s.impression, o.fields.impression);
                    assert_eq!(s.auction, o.fields.auction);
                }
                (AuctionResult::NoSale, None) => assert!(buf.is_empty()),
                (a, b) => panic!("divergent outcomes at {i}: {a:?} vs {b:?}"),
            }
        }
        assert!(sales > 150, "most auctions should clear, got {sales}");
    }

    #[test]
    fn app_traffic_clears_higher() {
        let mut m = market();
        let t = SimTime::from_ymd_hm(2015, 5, 5, 13, 0);
        let mut web = Vec::new();
        let mut app = Vec::new();
        for i in 0..2000 {
            let mut req = request(Adx::MoPub, t.plus_minutes(i % 300));
            req.user = UserId(i as u32 % 50);
            req.interaction = if i % 2 == 0 {
                InteractionType::MobileWeb
            } else {
                InteractionType::MobileApp
            };
            if let AuctionResult::Sale(o) = m.run_auction(&req) {
                if req.interaction == InteractionType::MobileWeb {
                    web.push(o.charge.as_f64());
                } else {
                    app.push(o.charge.as_f64());
                }
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let (mw, ma) = (median(&mut web), median(&mut app));
        assert!(
            ma > 1.8 * mw,
            "app {ma:.3} should clear well above web {mw:.3}"
        );
    }

    #[test]
    fn encrypted_channel_clears_higher() {
        // §6.1's headline: encrypted prices ≈1.7× cleartext. Compare
        // MoPub (cleartext house) with DoubleClick (encrypted house) on
        // identical request streams.
        let mut m = market();
        let t = SimTime::from_ymd_hm(2015, 7, 7, 11, 0);
        let mut clear = Vec::new();
        let mut enc = Vec::new();
        for i in 0..3000 {
            let mut req = request(
                if i % 2 == 0 {
                    Adx::MoPub
                } else {
                    Adx::DoubleClick
                },
                t.plus_minutes(i % 500),
            );
            req.user = UserId(i as u32 % 100);
            if let AuctionResult::Sale(o) = m.run_auction(&req) {
                match o.visibility {
                    PriceVisibility::Cleartext => clear.push(o.charge.as_f64()),
                    PriceVisibility::Encrypted => enc.push(o.charge.as_f64()),
                }
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let ratio = median(&mut enc) / median(&mut clear);
        assert!(
            (1.3..=2.3).contains(&ratio),
            "encrypted/cleartext median ratio {ratio:.2} should be near 1.7"
        );
    }
}
