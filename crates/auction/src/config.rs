//! Market configuration.

use crate::valuation::ValuationModel;
use serde::{Deserialize, Serialize};
use yav_types::{Adx, Cpm};

/// Everything that parameterises a [`crate::Market`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Master seed; every internal randomness stream derives from it.
    pub seed: u64,
    /// Size of the DSP roster.
    pub n_dsps: u32,
    /// Exchange floor price: auctions clearing below it charge the floor.
    pub floor: Cpm,
    /// Mean number of DSP integrations participating per auction (the
    /// realised count varies with user value and interest match).
    pub mean_bidders: f64,
    /// The latent price process.
    pub valuation: ValuationModel,
    /// Fraction of users in the DMP whale tail.
    pub whale_fraction: f64,
    /// Log-normal sigma of ordinary user value.
    pub user_value_sigma: f64,
    /// Probability that a cleartext-house (adx, dsp) integration migrates
    /// to encrypted reporting at some point during the simulation (the
    /// Figure-2 drift), for the two large cleartext exchanges.
    pub migration_rate_major: f64,
    /// Same, for the remaining cleartext exchanges.
    pub migration_rate_minor: f64,
}

impl Default for MarketConfig {
    fn default() -> MarketConfig {
        MarketConfig {
            seed: 0x5EED,
            n_dsps: 60,
            floor: Cpm::from_micros(10_000), // 0.01 CPM
            mean_bidders: 6.0,
            valuation: ValuationModel::default(),
            whale_fraction: 0.02,
            user_value_sigma: 0.04,
            migration_rate_major: 0.03,
            migration_rate_minor: 0.08,
        }
    }
}

impl MarketConfig {
    /// Whether `adx` counts as one of the two dominant cleartext
    /// exchanges whose integrations rarely migrate (MoPub, Adnxs — the
    /// Figure-3 heads).
    pub fn is_major_cleartext(adx: Adx) -> bool {
        matches!(adx, Adx::MoPub | Adx::Adnxs)
    }
}

/// The impression-volume share of each exchange in the simulated mobile
/// market — the x-axis of Figure 3. MoPub and Adnxs lead (33.55 % and
/// 10.74 % in the paper); the encrypted-house exchanges sum to ≈27 %,
/// matching the paper's ~26 % encrypted share of mobile RTB.
pub fn adx_share(adx: Adx) -> f64 {
    match adx {
        Adx::MoPub => 0.3355,
        Adx::Adnxs => 0.1074,
        Adx::DoubleClick => 0.0942,
        Adx::Smaato => 0.0691,
        Adx::Nexage => 0.0646,
        Adx::OpenX => 0.0445,
        Adx::InMobi => 0.0414,
        Adx::Rubicon => 0.0387,
        Adx::Flurry => 0.0354,
        Adx::Millennial => 0.0293,
        Adx::Turn => 0.0252,
        Adx::MathTag => 0.0240,
        Adx::Smartadserver => 0.0236,
        Adx::PulsePoint => 0.0200,
        Adx::Criteo => 0.0197,
        Adx::Rtbhouse => 0.0168,
        Adx::Improve => 0.0106,
    }
}

/// Samples an exchange according to [`adx_share`], using one uniform draw
/// in `[0, 1)`.
pub fn sample_adx(uniform: f64) -> Adx {
    let mut acc = 0.0;
    for adx in Adx::ALL {
        acc += adx_share(adx);
        if uniform < acc {
            return adx;
        }
    }
    *Adx::ALL.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::PriceVisibility;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = Adx::ALL.iter().map(|&a| adx_share(a)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn encrypted_houses_hold_about_a_quarter() {
        let enc: f64 = Adx::ALL
            .iter()
            .filter(|a| a.house_style() == PriceVisibility::Encrypted)
            .map(|&a| adx_share(a))
            .sum();
        assert!((0.24..=0.30).contains(&enc), "encrypted share {enc}");
    }

    #[test]
    fn mopub_dominates_cleartext() {
        // Figure 3: MoPub alone is ~45 % of cleartext prices.
        let clear: f64 = Adx::ALL
            .iter()
            .filter(|a| a.house_style() == PriceVisibility::Cleartext)
            .map(|&a| adx_share(a))
            .sum();
        let mopub_frac = adx_share(Adx::MoPub) / clear;
        assert!(
            (0.42..=0.50).contains(&mopub_frac),
            "mopub cleartext share {mopub_frac}"
        );
    }

    #[test]
    fn sampling_respects_shares() {
        // Deterministic stratified probe of the inverse-CDF sampler.
        let n = 100_000;
        let mut mopub = 0usize;
        for i in 0..n {
            if sample_adx(i as f64 / n as f64) == Adx::MoPub {
                mopub += 1;
            }
        }
        let frac = mopub as f64 / n as f64;
        assert!((frac - 0.3355).abs() < 0.001, "mopub sampled {frac}");
        assert_eq!(sample_adx(0.9999999), Adx::Improve);
    }

    #[test]
    fn default_config_is_sane() {
        let c = MarketConfig::default();
        assert!(c.n_dsps >= 10);
        assert!(c.floor.is_positive());
        assert!(c.migration_rate_minor > c.migration_rate_major);
        assert!(MarketConfig::is_major_cleartext(Adx::MoPub));
        assert!(!MarketConfig::is_major_cleartext(Adx::Turn));
    }
}
