//! Ad requests: what a publisher's page (or app) sends toward an exchange
//! when an ad slot needs filling.

use serde::{Deserialize, Serialize};
use yav_types::{
    AdSlotSize, Adx, City, DeviceType, IabCategory, InteractionType, Os, PublisherId, SimTime,
    UserId,
};

/// One ad-slot auction request, carrying the user context the RTB bid
/// request would expose (step 3 of the paper's Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdRequest {
    /// When the slot came up.
    pub time: SimTime,
    /// The (tracked) user behind the request.
    pub user: UserId,
    /// User's current city (from IP geolocation).
    pub city: City,
    /// Device operating system (from the user agent).
    pub os: Os,
    /// Device hardware class.
    pub device: DeviceType,
    /// Native app or mobile web.
    pub interaction: InteractionType,
    /// The publisher whose inventory is auctioned.
    pub publisher: PublisherId,
    /// The publisher's site/app domain (echoed as `pub_name` by verbose
    /// exchanges).
    pub publisher_name: String,
    /// The publisher's IAB content category.
    pub iab: IabCategory,
    /// The auctioned creative format.
    pub slot: AdSlotSize,
    /// The exchange handling the auction (the SSP's routing decision).
    pub adx: Adx,
    /// How strongly the user's interest profile matches this content
    /// (0..=1); the DMP computes it and retargeting-heavy DSPs pay up
    /// for good matches.
    pub interest_match: f64,
}

impl AdRequest {
    /// True if this request is eligible for a Table-5 campaign filter
    /// tuple `(city, interaction, shift, weekend, device, os, format,
    /// adx)` — used by the probing-campaign harness.
    #[allow(clippy::too_many_arguments)]
    pub fn matches_filter(
        &self,
        city: City,
        interaction: InteractionType,
        shift: yav_types::time::CampaignShift,
        weekend: bool,
        device: DeviceType,
        os: Os,
        format: AdSlotSize,
        adx: Adx,
    ) -> bool {
        self.city == city
            && self.interaction == interaction
            && yav_types::time::CampaignShift::from_hour(self.time.hour()) == shift
            && self.time.is_weekend() == weekend
            && self.device == device
            && self.os == os
            && self.slot == format
            && self.adx == adx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::time::CampaignShift;

    fn req() -> AdRequest {
        AdRequest {
            time: SimTime::from_ymd_hm(2016, 5, 9, 10, 0), // Monday morning
            user: UserId(1),
            city: City::Madrid,
            os: Os::Ios,
            device: DeviceType::Smartphone,
            interaction: InteractionType::MobileApp,
            publisher: PublisherId(3),
            publisher_name: "newsapp.example".into(),
            iab: IabCategory::News,
            slot: AdSlotSize::S320x50,
            adx: Adx::MoPub,
            interest_match: 0.5,
        }
    }

    #[test]
    fn filter_matches_exact_tuple() {
        let r = req();
        assert!(r.matches_filter(
            City::Madrid,
            InteractionType::MobileApp,
            CampaignShift::Business,
            false,
            DeviceType::Smartphone,
            Os::Ios,
            AdSlotSize::S320x50,
            Adx::MoPub,
        ));
        // One mismatched dimension breaks it.
        assert!(!r.matches_filter(
            City::Barcelona,
            InteractionType::MobileApp,
            CampaignShift::Business,
            false,
            DeviceType::Smartphone,
            Os::Ios,
            AdSlotSize::S320x50,
            Adx::MoPub,
        ));
        assert!(!r.matches_filter(
            City::Madrid,
            InteractionType::MobileApp,
            CampaignShift::Overnight,
            false,
            DeviceType::Smartphone,
            Os::Ios,
            AdSlotSize::S320x50,
            Adx::MoPub,
        ));
    }
}
