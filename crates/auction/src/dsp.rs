//! Demand-side platforms: the bidders.
//!
//! Each simulated DSP has a strategy archetype that shapes how its
//! decision engine perturbs the shared valuation model. The mix matters
//! for the paper's headline: *retargeters* both bid the highest premiums
//! and prefer confidential (encrypted) reporting channels, which is one of
//! §2.3's proposed explanations for why encrypted charge prices run
//! higher than cleartext ones.

use serde::{Deserialize, Serialize};
use yav_types::DspId;

/// Bidding archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DspStrategy {
    /// Broad-reach brand buyer: near-baseline valuations, bids often.
    Brand,
    /// Performance buyer: slightly sharper valuations, average volume.
    Performance,
    /// Retargeter: large premiums on well-matched users, insists on
    /// confidential reporting.
    Retargeter,
}

/// A DSP's static configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DspProfile {
    /// The bidder's identity.
    pub id: DspId,
    /// Strategy archetype.
    pub strategy: DspStrategy,
    /// Log-scale offset this DSP adds to the shared valuation location.
    pub mu_offset: f64,
    /// Probability the DSP participates in (bids on) a given auction its
    /// exchange integrations see.
    pub participation: f64,
    /// Extra log-premium applied when the user's interest match is high
    /// (retargeting intensity).
    pub match_premium: f64,
}

impl DspProfile {
    /// Builds the deterministic DSP roster. Index `i` cycles through the
    /// archetypes so any roster size keeps a realistic mix (≈20 %
    /// retargeters).
    pub fn roster(n: u32) -> Vec<DspProfile> {
        (0..n)
            .map(|i| {
                // Deterministic per-DSP jitter from the index (splitmix-ish),
                // so rosters are stable across runs and roster sizes.
                let h = {
                    let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                let jitter = ((h % 1000) as f64 / 1000.0 - 0.5) * 0.08; // ±0.04
                let strategy = match i % 5 {
                    0 | 1 => DspStrategy::Brand,
                    2 | 3 => DspStrategy::Performance,
                    _ => DspStrategy::Retargeter,
                };
                let (mu, participation, match_premium) = match strategy {
                    DspStrategy::Brand => (-0.03 + jitter, 0.55, 0.0),
                    DspStrategy::Performance => (0.03 + jitter, 0.45, 0.10),
                    DspStrategy::Retargeter => (0.12 + jitter, 0.35, 0.35),
                };
                DspProfile {
                    id: DspId(i),
                    strategy,
                    mu_offset: mu,
                    participation,
                    match_premium,
                }
            })
            .collect()
    }

    /// Whether this DSP prefers encrypted price reporting when the
    /// exchange offers the choice.
    pub fn prefers_encryption(&self) -> bool {
        matches!(self.strategy, DspStrategy::Retargeter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_deterministic() {
        let a = DspProfile::roster(40);
        let b = DspProfile::roster(40);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.strategy, y.strategy);
            assert_eq!(x.mu_offset, y.mu_offset);
        }
    }

    #[test]
    fn archetype_mix() {
        let roster = DspProfile::roster(50);
        let retargeters = roster
            .iter()
            .filter(|d| d.strategy == DspStrategy::Retargeter)
            .count();
        assert_eq!(retargeters, 10, "one in five is a retargeter");
    }

    #[test]
    fn retargeters_bid_up_and_hide() {
        let roster = DspProfile::roster(50);
        let avg = |s: DspStrategy| {
            let v: Vec<f64> = roster
                .iter()
                .filter(|d| d.strategy == s)
                .map(|d| d.mu_offset)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(DspStrategy::Retargeter) > avg(DspStrategy::Brand));
        for d in &roster {
            assert_eq!(
                d.prefers_encryption(),
                d.strategy == DspStrategy::Retargeter
            );
            assert!(d.participation > 0.0 && d.participation <= 1.0);
        }
    }

    #[test]
    fn roster_prefix_stable() {
        // Growing the roster must not reshuffle existing DSPs.
        let small = DspProfile::roster(10);
        let large = DspProfile::roster(100);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.mu_offset, l.mu_offset);
            assert_eq!(s.strategy, l.strategy);
        }
    }
}
