//! RTB market simulator.
//!
//! The paper measures the real 2015 mobile RTB market through one narrow
//! aperture — winning-price notification URLs passing the user's browser.
//! This crate rebuilds the market behind that aperture: publishers hand ad
//! slots to exchanges, DSP decision engines value each (user, context)
//! pair, a second-price (Vickrey) auction resolves, and the exchange emits
//! the notification URL with a cleartext or encrypted charge price.
//!
//! The economic behaviour lives in [`valuation`]: a latent log-normal
//! price process modulated by the effects the paper measures (city,
//! daypart, weekday, OS, app-vs-web, IAB category, slot format, per-user
//! value, encrypted-channel premium, year-over-year drift). Every figure
//! of the paper's §4 and §6 *emerges* from auctions over this process —
//! nothing downstream ever reads the latent parameters.
//!
//! Layering (see DESIGN.md): this crate knows nothing about browsing
//! behaviour (that is `yav-weblog`) or analysis (that is `yav-analyzer`).
//! Determinism: all randomness flows from the seed in [`MarketConfig`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod dsp;
pub mod exchange;
pub mod market;
pub mod profile;
pub mod request;
pub mod valuation;

pub use config::MarketConfig;
pub use dsp::{DspProfile, DspStrategy};
pub use market::{AuctionOutcome, AuctionResult, Market, MarketTemplate, ProbeBid, ProbeWin, SaleLite};
pub use profile::Dmp;
pub use request::AdRequest;
pub use valuation::ValuationModel;
