//! Market entities: ad-exchanges and demand-side platforms.
//!
//! The paper observes a concrete population of ADXs and DSPs through the
//! nURLs they emit. [`Adx`] enumerates the exchanges that matter to the
//! study (Table 5's campaign targets plus the other top entities of
//! Figure 3); [`DspId`] names the bidders.

use crate::ad::PriceVisibility;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ad-exchanges observed in the study.
///
/// The first five are the Table-5 campaign targets; the remainder round out
/// the Figure-3 top entities. Each exchange has a *house style* for its
/// winning-price notification (cleartext vs encrypted), modelled after the
/// real 2015-era behaviour the paper reports: MoPub/Adnxs cleartext,
/// DoubleClick/OpenX/Rubicon/PulsePoint encrypted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Adx {
    MoPub,
    OpenX,
    Rubicon,
    DoubleClick,
    PulsePoint,
    Adnxs,
    MathTag,
    Smaato,
    Nexage,
    InMobi,
    Flurry,
    Millennial,
    Turn,
    Criteo,
    Rtbhouse,
    Smartadserver,
    Improve,
}

impl Adx {
    /// All exchanges.
    pub const ALL: [Adx; 17] = [
        Adx::MoPub,
        Adx::OpenX,
        Adx::Rubicon,
        Adx::DoubleClick,
        Adx::PulsePoint,
        Adx::Adnxs,
        Adx::MathTag,
        Adx::Smaato,
        Adx::Nexage,
        Adx::InMobi,
        Adx::Flurry,
        Adx::Millennial,
        Adx::Turn,
        Adx::Criteo,
        Adx::Rtbhouse,
        Adx::Smartadserver,
        Adx::Improve,
    ];

    /// The five exchanges a Table-5 campaign can target.
    pub const CAMPAIGN_TARGETS: [Adx; 5] = [
        Adx::MoPub,
        Adx::OpenX,
        Adx::Rubicon,
        Adx::DoubleClick,
        Adx::PulsePoint,
    ];

    /// The four exchanges that encrypt prices, targeted by campaign A1.
    pub const ENCRYPTED_TARGETS: [Adx; 4] =
        [Adx::DoubleClick, Adx::OpenX, Adx::Rubicon, Adx::PulsePoint];

    /// The exchange's dominant notification style in the 2015 mobile market.
    ///
    /// Real exchanges are not perfectly consistent — individual DSP
    /// integrations may differ — so this is the *house default* the
    /// simulator perturbs, not an invariant the analyzer may assume.
    pub fn house_style(self) -> PriceVisibility {
        match self {
            Adx::MoPub
            | Adx::Adnxs
            | Adx::Smaato
            | Adx::Nexage
            | Adx::InMobi
            | Adx::Flurry
            | Adx::Millennial
            | Adx::Turn
            | Adx::Smartadserver => PriceVisibility::Cleartext,
            Adx::OpenX
            | Adx::Rubicon
            | Adx::DoubleClick
            | Adx::PulsePoint
            | Adx::MathTag
            | Adx::Criteo
            | Adx::Rtbhouse
            | Adx::Improve => PriceVisibility::Encrypted,
        }
    }

    /// The exchange's notification domain as it appears in nURLs.
    /// `const` so host screens can precompute dispatch tables over the
    /// roster at compile time.
    pub const fn domain(self) -> &'static str {
        match self {
            Adx::MoPub => "cpp.imp.mpx.mopub.com",
            Adx::OpenX => "rtb.openx.net",
            Adx::Rubicon => "beacon-eu2.rubiconproject.com",
            Adx::DoubleClick => "googleads.g.doubleclick.net",
            Adx::PulsePoint => "bid.contextweb.com",
            Adx::Adnxs => "ib.adnxs.com",
            Adx::MathTag => "tags.mathtag.com",
            Adx::Smaato => "ads.smaato.net",
            Adx::Nexage => "bid.nexage.com",
            Adx::InMobi => "ads.inmobi.com",
            Adx::Flurry => "ads.flurry.com",
            Adx::Millennial => "ads.mp.mydas.mobi",
            Adx::Turn => "ad.turn.com",
            Adx::Criteo => "bidder.criteo.com",
            Adx::Rtbhouse => "creativecdn.com",
            Adx::Smartadserver => "itempana.smartadserver.com",
            Adx::Improve => "ad.360yield.com",
        }
    }

    /// Marketing name as printed in figures.
    pub fn name(self) -> &'static str {
        match self {
            Adx::MoPub => "MoPub",
            Adx::OpenX => "OpenX",
            Adx::Rubicon => "RubiconProject",
            Adx::DoubleClick => "DoubleClick",
            Adx::PulsePoint => "PulsePoint",
            Adx::Adnxs => "Adnxs",
            Adx::MathTag => "MathTag",
            Adx::Smaato => "Smaato",
            Adx::Nexage => "Nexage",
            Adx::InMobi => "InMobi",
            Adx::Flurry => "Flurry",
            Adx::Millennial => "MillennialMedia",
            Adx::Turn => "Turn",
            Adx::Criteo => "Criteo",
            Adx::Rtbhouse => "RTBHouse",
            Adx::Smartadserver => "SmartAdServer",
            Adx::Improve => "ImproveDigital",
        }
    }

    /// 0-based dense index into [`Adx::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Exchange from a 0-based index.
    ///
    /// # Panics
    /// Panics if `idx >= 17`.
    pub fn from_index(idx: usize) -> Adx {
        Adx::ALL[idx]
    }

    /// Looks an exchange up by notification domain.
    pub fn from_domain(domain: &str) -> Option<Adx> {
        Adx::ALL.iter().copied().find(|a| a.domain() == domain)
    }
}

impl fmt::Display for Adx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A demand-side platform (bidder) identifier.
///
/// DSPs are an open population — the simulator instantiates a configurable
/// number of them — so unlike [`Adx`] this is a newtype over a dense index,
/// with a deterministic synthetic domain name for nURL purposes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct DspId(pub u32);

impl DspId {
    /// A stable, realistic-looking roster for the first few ids, then
    /// synthetic names. Keeping real-world names here makes analyzer
    /// output and figures legible.
    const ROSTER: [&'static str; 12] = [
        "mediamath.com",
        "bidder.criteo.com",
        "doubleclickbygoogle.com",
        "appnexus.com",
        "invitemedia.com",
        "adserver-ir-p.mythings.com",
        "tags.mathtag.com",
        "rtb.adform.net",
        "dsp.turn.com",
        "bid.rocketfuel.com",
        "x.dataxu.com",
        "engine.adzerk.net",
    ];

    /// The DSP's callback domain as embedded in nURLs.
    pub fn domain(self) -> String {
        let mut out = String::new();
        self.write_domain(&mut out);
        out
    }

    /// The roster domain, when this id has one — `None` for synthetic
    /// ids, whose domain must be rendered via [`DspId::write_domain`].
    pub fn static_domain(self) -> Option<&'static str> {
        Self::ROSTER.get(self.0 as usize).copied()
    }

    /// Appends the callback domain to `buf` without allocating — the
    /// hot-path form used by the allocation-free nURL renderer.
    pub fn write_domain(self, buf: &mut String) {
        use std::fmt::Write;
        match Self::ROSTER.get(self.0 as usize) {
            Some(d) => buf.push_str(d),
            // String's fmt::Write never fails; the fallback keeps the
            // path panic-free.
            None => {
                let _ = write!(buf, "dsp{}.bid.example.com", self.0);
            }
        }
    }

    /// Maps a callback domain back to its id — the allocation-free
    /// inverse of [`DspId::domain`], used by the nURL parser on the
    /// per-URL hot path.
    pub fn from_domain(domain: &str) -> Option<DspId> {
        if let Some(i) = Self::ROSTER.iter().position(|d| *d == domain) {
            return Some(DspId(i as u32));
        }
        domain
            .strip_prefix("dsp")?
            .strip_suffix(".bid.example.com")?
            .parse()
            .ok()
            .map(DspId)
    }
}

impl fmt::Display for DspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DSP#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_targets_subset_of_all() {
        for t in Adx::CAMPAIGN_TARGETS {
            assert!(Adx::ALL.contains(&t));
        }
        for t in Adx::ENCRYPTED_TARGETS {
            assert_eq!(t.house_style(), PriceVisibility::Encrypted);
        }
        assert_eq!(Adx::MoPub.house_style(), PriceVisibility::Cleartext);
    }

    #[test]
    fn domains_unique_and_resolvable() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in Adx::ALL {
            assert!(seen.insert(a.domain()), "duplicate domain {}", a.domain());
            assert_eq!(Adx::from_domain(a.domain()), Some(a));
        }
        assert_eq!(Adx::from_domain("example.com"), None);
    }

    #[test]
    fn index_round_trip() {
        for (i, a) in Adx::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Adx::from_index(i), *a);
        }
    }

    #[test]
    fn dsp_domains_stable() {
        assert_eq!(DspId(0).domain(), "mediamath.com");
        assert_eq!(DspId(100).domain(), "dsp100.bid.example.com");
    }

    #[test]
    fn dsp_domain_round_trips() {
        for id in [0u32, 5, 11, 12, 100, 4_000_000] {
            let id = DspId(id);
            assert_eq!(DspId::from_domain(&id.domain()), Some(id));
        }
        assert_eq!(DspId::from_domain("not-a-dsp.example"), None);
        assert_eq!(DspId::from_domain("dspX.bid.example.com"), None);
    }
}
