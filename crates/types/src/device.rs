//! Devices and interaction channels.
//!
//! The analyzer classifies traffic by parsing `User-Agent` headers into an
//! operating system ([`Os`]), a hardware class ([`DeviceType`]) and whether
//! the request came from a native app or a mobile browser
//! ([`InteractionType`]) — §4.3 of the paper. The same three dimensions are
//! campaign filters in Table 5.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mobile operating systems as bucketed in Figures 8–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Os {
    Android,
    Ios,
    WindowsMobile,
    Other,
}

impl Os {
    /// All four buckets in figure order.
    pub const ALL: [Os; 4] = [Os::Android, Os::Ios, Os::WindowsMobile, Os::Other];

    /// The two OSes campaigns can target (Table 5).
    pub const CAMPAIGN_TARGETS: [Os; 2] = [Os::Ios, Os::Android];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Os::Android => "Android",
            Os::Ios => "iOS",
            Os::WindowsMobile => "Windows Mob",
            Os::Other => "Other",
        }
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Hardware class of the device behind a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DeviceType {
    Smartphone,
    Tablet,
    Pc,
}

impl DeviceType {
    /// The two mobile classes campaigns can target (Table 5).
    pub const CAMPAIGN_TARGETS: [DeviceType; 2] = [DeviceType::Smartphone, DeviceType::Tablet];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceType::Smartphone => "Smartphone",
            DeviceType::Tablet => "Tablet",
            DeviceType::Pc => "PC",
        }
    }

    /// True for smartphones and tablets.
    pub fn is_mobile(self) -> bool {
        !matches!(self, DeviceType::Pc)
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether an ad was delivered inside a native mobile application or a
/// (mobile) web page. §4.4 finds app inventory draws ≈2.6× higher prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InteractionType {
    /// Ad rendered inside a native mobile application.
    MobileApp,
    /// Ad rendered in a mobile web browser.
    MobileWeb,
}

impl InteractionType {
    /// Both channels (the Table-5 "type of interaction" filter).
    pub const ALL: [InteractionType; 2] = [InteractionType::MobileApp, InteractionType::MobileWeb];

    /// Table-5 label.
    pub fn label(self) -> &'static str {
        match self {
            InteractionType::MobileApp => "Mobile in-app",
            InteractionType::MobileWeb => "Mobile web",
        }
    }
}

impl fmt::Display for InteractionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_classification() {
        assert!(DeviceType::Smartphone.is_mobile());
        assert!(DeviceType::Tablet.is_mobile());
        assert!(!DeviceType::Pc.is_mobile());
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Os::Ios.label(), "iOS");
        assert_eq!(Os::WindowsMobile.label(), "Windows Mob");
        assert_eq!(InteractionType::MobileApp.label(), "Mobile in-app");
    }
}
