//! Simulated time.
//!
//! The measurement study spans the whole of 2015 (dataset *D*) plus the
//! May/June 2016 probing ad-campaigns. To keep the workspace free of
//! wall-clock dependencies we carry our own minimal Gregorian calendar:
//! [`SimTime`] counts **minutes since 2015-01-01 00:00 UTC** (which was a
//! Thursday) and derives month, day-of-week and time-of-day buckets from
//! that single integer.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Minutes in a day.
pub const MINUTES_PER_DAY: i64 = 24 * 60;
/// Minutes in a week.
pub const MINUTES_PER_WEEK: i64 = 7 * MINUTES_PER_DAY;

/// Day lengths for 2015 (not a leap year) and 2016 (leap year).
const DAYS_2015: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
const DAYS_2016: [u32; 12] = [31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A point in simulated time: minutes since 2015-01-01 00:00 UTC.
///
/// ```
/// use yav_types::{SimTime, DayOfWeek, Month};
/// let t = SimTime::from_ymd_hm(2015, 5, 4, 9, 30); // 4 May 2015, 09:30
/// assert_eq!(t.day_of_week(), DayOfWeek::Monday);
/// assert_eq!(t.month(), Month::May);
/// assert_eq!(t.hour(), 9);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(i64);

impl SimTime {
    /// The epoch: 2015-01-01 00:00 UTC (a Thursday).
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds a time from raw minutes since the epoch.
    pub const fn from_minutes(minutes: i64) -> SimTime {
        SimTime(minutes)
    }

    /// Minutes since the epoch.
    pub const fn minutes(self) -> i64 {
        self.0
    }

    /// Builds a time from a calendar date and wall time. Supported years are
    /// 2015 and 2016 (the study period); `month` is 1-based.
    ///
    /// # Panics
    /// Panics on out-of-range components — construction sites are all
    /// simulation configuration, where a bad date is a programming error.
    pub fn from_ymd_hm(year: u32, month: u32, day: u32, hour: u32, minute: u32) -> SimTime {
        assert!(
            (2015..=2016).contains(&year),
            "supported years are 2015-2016, got {year}"
        );
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let table = if year == 2015 { &DAYS_2015 } else { &DAYS_2016 };
        assert!(
            day >= 1 && day <= table[(month - 1) as usize],
            "day out of range: {year}-{month}-{day}"
        );
        assert!(
            hour < 24 && minute < 60,
            "time out of range: {hour}:{minute}"
        );
        let mut days: i64 = if year == 2016 { 365 } else { 0 };
        days += table[..(month - 1) as usize]
            .iter()
            .map(|&d| d as i64)
            .sum::<i64>();
        days += (day - 1) as i64;
        SimTime(days * MINUTES_PER_DAY + (hour as i64) * 60 + minute as i64)
    }

    /// Calendar date `(year, month, day)` of this instant (1-based month/day).
    /// Times before the epoch clamp to it; times past 2016 keep counting in
    /// 365-day years, which is fine for the study window.
    pub fn ymd(self) -> (u32, u32, u32) {
        let mut days = (self.0.max(0)) / MINUTES_PER_DAY;
        let (year, table) = if days < 365 {
            (2015, &DAYS_2015)
        } else if days < 365 + 366 {
            days -= 365;
            (2016, &DAYS_2016)
        } else {
            days = (days - 365 - 366) % 365;
            (2017, &DAYS_2015)
        };
        let mut month = 0usize;
        while days >= table[month] as i64 {
            days -= table[month] as i64;
            month += 1;
        }
        (year, month as u32 + 1, days as u32 + 1)
    }

    /// The year of this instant.
    pub fn year(self) -> u32 {
        self.ymd().0
    }

    /// The calendar month of this instant.
    pub fn month(self) -> Month {
        Month::from_index(self.ymd().1 as usize - 1)
    }

    /// Hour of day, 0–23.
    pub fn hour(self) -> u32 {
        ((self.0.rem_euclid(MINUTES_PER_DAY)) / 60) as u32
    }

    /// Minute within the hour, 0–59.
    pub fn minute(self) -> u32 {
        (self.0.rem_euclid(60)) as u32
    }

    /// Day of week. The epoch (2015-01-01) was a Thursday.
    pub fn day_of_week(self) -> DayOfWeek {
        let days = self.0.div_euclid(MINUTES_PER_DAY);
        DayOfWeek::from_index(((days + 3).rem_euclid(7)) as usize) // epoch offset: Mon=0 ⇒ Thu=3
    }

    /// The paper's Figure-6 time-of-day bucket for this instant.
    pub fn time_of_day(self) -> TimeOfDay {
        TimeOfDay::from_hour(self.hour())
    }

    /// True if this instant falls on Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self.day_of_week(), DayOfWeek::Saturday | DayOfWeek::Sunday)
    }

    /// Advances by whole days.
    pub fn plus_days(self, days: i64) -> SimTime {
        SimTime(self.0 + days * MINUTES_PER_DAY)
    }

    /// Advances by minutes.
    pub fn plus_minutes(self, minutes: i64) -> SimTime {
        SimTime(self.0 + minutes)
    }
}

impl Add<i64> for SimTime {
    type Output = SimTime;
    /// Adds minutes.
    fn add(self, minutes: i64) -> SimTime {
        SimTime(self.0 + minutes)
    }
}

impl Sub for SimTime {
    type Output = i64;
    /// Difference in minutes.
    fn sub(self, rhs: SimTime) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(
            f,
            "{y:04}-{m:02}-{d:02} {:02}:{:02}",
            self.hour(),
            self.minute()
        )
    }
}

/// Calendar months, used to bucket the year-long dataset (Figures 2, 8, 9
/// and 12 are all per-month series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Month {
    January,
    February,
    March,
    April,
    May,
    June,
    July,
    August,
    September,
    October,
    November,
    December,
}

impl Month {
    /// All twelve months in order.
    pub const ALL: [Month; 12] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// Month from a 0-based index.
    ///
    /// # Panics
    /// Panics if `idx >= 12`.
    pub fn from_index(idx: usize) -> Month {
        Month::ALL[idx]
    }

    /// 0-based index (January == 0).
    pub fn index(self) -> usize {
        self as usize
    }

    /// 1-based month number as printed on figure axes.
    pub fn number(self) -> u32 {
        self as u32 + 1
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Days of the week (Figure 7 buckets; the paper orders them Sunday-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday-first (ISO order).
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// All days in the paper's Figure-7 order (Sunday-first).
    pub const PAPER_ORDER: [DayOfWeek; 7] = [
        DayOfWeek::Sunday,
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
    ];

    /// Day from a 0-based index, Monday == 0.
    ///
    /// # Panics
    /// Panics if `idx >= 7`.
    pub fn from_index(idx: usize) -> DayOfWeek {
        DayOfWeek::ALL[idx]
    }

    /// 0-based index, Monday == 0.
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The paper's time-of-day buckets.
///
/// Figure 6 uses six 4-hour bins; the Table-5 campaign setups use three
/// coarser shifts (12am-9am / 9am-6pm / 6pm-12am), exposed via
/// [`TimeOfDay::campaign_shift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TimeOfDay {
    /// 00:00–03:59.
    Night,
    /// 04:00–07:59.
    EarlyMorning,
    /// 08:00–11:59.
    Morning,
    /// 12:00–15:59.
    Afternoon,
    /// 16:00–19:59.
    Evening,
    /// 20:00–23:59.
    LateEvening,
}

impl TimeOfDay {
    /// All six buckets in figure order.
    pub const ALL: [TimeOfDay; 6] = [
        TimeOfDay::Night,
        TimeOfDay::EarlyMorning,
        TimeOfDay::Morning,
        TimeOfDay::Afternoon,
        TimeOfDay::Evening,
        TimeOfDay::LateEvening,
    ];

    /// Bucket containing the given hour (0–23).
    pub fn from_hour(hour: u32) -> TimeOfDay {
        TimeOfDay::ALL[(hour as usize % 24) / 4]
    }

    /// The figure label, e.g. `"08:00-11:00"` (the paper labels bins by
    /// their first and last starting hour).
    pub fn label(self) -> &'static str {
        match self {
            TimeOfDay::Night => "00:00-03:00",
            TimeOfDay::EarlyMorning => "04:00-07:00",
            TimeOfDay::Morning => "08:00-11:00",
            TimeOfDay::Afternoon => "12:00-15:00",
            TimeOfDay::Evening => "16:00-19:00",
            TimeOfDay::LateEvening => "20:00-23:00",
        }
    }

    /// The Table-5 campaign shift this bucket belongs to.
    pub fn campaign_shift(self) -> CampaignShift {
        match self {
            TimeOfDay::Night | TimeOfDay::EarlyMorning => CampaignShift::Overnight,
            TimeOfDay::Morning | TimeOfDay::Afternoon => CampaignShift::Business,
            TimeOfDay::Evening | TimeOfDay::LateEvening => CampaignShift::Prime,
        }
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three time-of-day shifts used as campaign filters in Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CampaignShift {
    /// 12am–9am.
    Overnight,
    /// 9am–6pm.
    Business,
    /// 6pm–12am.
    Prime,
}

impl CampaignShift {
    /// All three shifts.
    pub const ALL: [CampaignShift; 3] = [
        CampaignShift::Overnight,
        CampaignShift::Business,
        CampaignShift::Prime,
    ];

    /// The shift containing a given hour (0–23). Note the shifts are uneven
    /// (9/9/6 hours) exactly as in Table 5.
    pub fn from_hour(hour: u32) -> CampaignShift {
        match hour % 24 {
            0..=8 => CampaignShift::Overnight,
            9..=17 => CampaignShift::Business,
            _ => CampaignShift::Prime,
        }
    }

    /// Table-5 label.
    pub fn label(self) -> &'static str {
        match self {
            CampaignShift::Overnight => "12am-9am",
            CampaignShift::Business => "9am-6pm",
            CampaignShift::Prime => "6pm-12am",
        }
    }
}

impl fmt::Display for CampaignShift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(SimTime::EPOCH.day_of_week(), DayOfWeek::Thursday);
        assert_eq!(SimTime::EPOCH.ymd(), (2015, 1, 1));
        assert_eq!(SimTime::EPOCH.month(), Month::January);
    }

    #[test]
    fn known_dates() {
        // 2015-12-31 was a Thursday; 2016-02-29 existed (leap year, a Monday).
        assert_eq!(
            SimTime::from_ymd_hm(2015, 12, 31, 0, 0).day_of_week(),
            DayOfWeek::Thursday
        );
        let leap = SimTime::from_ymd_hm(2016, 2, 29, 12, 0);
        assert_eq!(leap.ymd(), (2016, 2, 29));
        assert_eq!(leap.day_of_week(), DayOfWeek::Monday);
        // 2016-06-15 was a Wednesday (A2 campaign window).
        assert_eq!(
            SimTime::from_ymd_hm(2016, 6, 15, 0, 0).day_of_week(),
            DayOfWeek::Wednesday
        );
    }

    #[test]
    fn ymd_round_trip_across_both_years() {
        for year in [2015u32, 2016] {
            let table = if year == 2015 { &DAYS_2015 } else { &DAYS_2016 };
            for month in 1..=12u32 {
                for day in [1, 15, table[(month - 1) as usize]] {
                    let t = SimTime::from_ymd_hm(year, month, day, 13, 45);
                    assert_eq!(t.ymd(), (year, month, day));
                    assert_eq!(t.hour(), 13);
                    assert_eq!(t.minute(), 45);
                }
            }
        }
    }

    #[test]
    fn consecutive_days_advance_weekday() {
        let mut t = SimTime::EPOCH;
        let mut dow = t.day_of_week().index();
        for _ in 0..800 {
            t = t.plus_days(1);
            dow = (dow + 1) % 7;
            assert_eq!(t.day_of_week().index(), dow);
        }
    }

    #[test]
    fn time_of_day_buckets() {
        assert_eq!(TimeOfDay::from_hour(0), TimeOfDay::Night);
        assert_eq!(TimeOfDay::from_hour(3), TimeOfDay::Night);
        assert_eq!(TimeOfDay::from_hour(4), TimeOfDay::EarlyMorning);
        assert_eq!(TimeOfDay::from_hour(9), TimeOfDay::Morning);
        assert_eq!(TimeOfDay::from_hour(23), TimeOfDay::LateEvening);
    }

    #[test]
    fn campaign_shifts_partition_the_day() {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&'static str, u32> = BTreeMap::new();
        for h in 0..24 {
            *counts
                .entry(CampaignShift::from_hour(h).label())
                .or_default() += 1;
        }
        assert_eq!(counts["12am-9am"], 9);
        assert_eq!(counts["9am-6pm"], 9);
        assert_eq!(counts["6pm-12am"], 6);
    }

    #[test]
    fn weekend_detection() {
        // 2015-01-03 was a Saturday.
        assert!(SimTime::from_ymd_hm(2015, 1, 3, 10, 0).is_weekend());
        assert!(!SimTime::from_ymd_hm(2015, 1, 5, 10, 0).is_weekend());
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_ymd_hm(2015, 5, 4, 9, 5);
        assert_eq!(t.to_string(), "2015-05-04 09:05");
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn rejects_feb_29_2015() {
        SimTime::from_ymd_hm(2015, 2, 29, 0, 0);
    }
}
