//! Geography.
//!
//! Dataset *D* comes from mobile users in Spain; Figure 5 reports charge
//! prices for ten Spanish locations sorted by city size, and the Table-5
//! campaign setups target the four largest. [`City`] enumerates exactly
//! those ten.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The ten Spanish locations of Figure 5, ordered by (approximate 2015)
/// population, largest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum City {
    Madrid,
    Barcelona,
    Valencia,
    Seville,
    Zaragoza,
    Malaga,
    DosHermanas,
    VillaviciosaDeOdon,
    PriegoDeCordoba,
    Torello,
}

impl City {
    /// All ten cities, largest first.
    pub const ALL: [City; 10] = [
        City::Madrid,
        City::Barcelona,
        City::Valencia,
        City::Seville,
        City::Zaragoza,
        City::Malaga,
        City::DosHermanas,
        City::VillaviciosaDeOdon,
        City::PriegoDeCordoba,
        City::Torello,
    ];

    /// The four large cities used as campaign filters in Table 5.
    pub const CAMPAIGN_TARGETS: [City; 4] =
        [City::Madrid, City::Barcelona, City::Valencia, City::Seville];

    /// Human-readable name as printed on the Figure-5 axis.
    pub fn name(self) -> &'static str {
        match self {
            City::Madrid => "Madrid",
            City::Barcelona => "Barcelona",
            City::Valencia => "Valencia",
            City::Seville => "Seville",
            City::Zaragoza => "Zaragoza",
            City::Malaga => "Malaga",
            City::DosHermanas => "Dos Hermanas",
            City::VillaviciosaDeOdon => "Villaviciosa de Odon",
            City::PriegoDeCordoba => "Priego de Cordoba",
            City::Torello => "Torello",
        }
    }

    /// Approximate 2015 population, used by the weblog generator to weight
    /// how many panel users live in each city and by the latent price
    /// process (bigger market ⇒ deeper bid pool ⇒ lower median, higher
    /// variance — the Figure-5 shape).
    pub fn population(self) -> u32 {
        match self {
            City::Madrid => 3_165_000,
            City::Barcelona => 1_608_000,
            City::Valencia => 786_000,
            City::Seville => 693_000,
            City::Zaragoza => 664_000,
            City::Malaga => 569_000,
            City::DosHermanas => 131_000,
            City::VillaviciosaDeOdon => 27_000,
            City::PriegoDeCordoba => 23_000,
            City::Torello => 14_000,
        }
    }

    /// 0-based index into [`City::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// City from a 0-based index.
    ///
    /// # Panics
    /// Panics if `idx >= 10`.
    pub fn from_index(idx: usize) -> City {
        City::ALL[idx]
    }

    /// True if this city is one of the Table-5 campaign targets.
    pub fn is_campaign_target(self) -> bool {
        City::CAMPAIGN_TARGETS.contains(&self)
    }
}

impl fmt::Display for City {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_by_population() {
        for w in City::ALL.windows(2) {
            assert!(
                w[0].population() > w[1].population(),
                "{} should outrank {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn campaign_targets_are_the_top_four() {
        assert_eq!(&City::ALL[..4], &City::CAMPAIGN_TARGETS);
        assert!(City::Madrid.is_campaign_target());
        assert!(!City::Torello.is_campaign_target());
    }

    #[test]
    fn index_round_trip() {
        for (i, c) in City::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(City::from_index(i), *c);
        }
    }
}
