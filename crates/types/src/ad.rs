//! Ad formats and content taxonomy.
//!
//! [`AdSlotSize`] enumerates the seventeen creative formats seen in the
//! dataset's nURLs (Figure 12); [`IabCategory`] is the IAB content taxonomy
//! used to label publishers and user interests; [`PriceVisibility`] is the
//! central dichotomy of the whole paper — whether an RTB winning-price
//! notification carries its charge price in cleartext or encrypted.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The ad-slot (creative) sizes observed in dataset *D*, ordered by area
/// (the sort key of Figures 12–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AdSlotSize {
    S300x50,
    S320x50,
    S468x60,
    S200x200,
    S316x150,
    S728x90,
    S280x250,
    S120x600,
    S300x250,
    S336x280,
    S160x600,
    S800x130,
    S400x300,
    S320x480,
    S480x320,
    S300x600,
    S350x600,
    /// Full-screen tablet interstitial (portrait), a Table-5 tablet format.
    S768x1024,
    /// Full-screen tablet interstitial (landscape), a Table-5 tablet format.
    S1024x768,
}

impl AdSlotSize {
    /// Every representable size (declaration order).
    pub const EVERY: [AdSlotSize; 19] = [
        AdSlotSize::S300x50,
        AdSlotSize::S320x50,
        AdSlotSize::S468x60,
        AdSlotSize::S200x200,
        AdSlotSize::S316x150,
        AdSlotSize::S728x90,
        AdSlotSize::S280x250,
        AdSlotSize::S120x600,
        AdSlotSize::S300x250,
        AdSlotSize::S336x280,
        AdSlotSize::S160x600,
        AdSlotSize::S800x130,
        AdSlotSize::S400x300,
        AdSlotSize::S320x480,
        AdSlotSize::S480x320,
        AdSlotSize::S300x600,
        AdSlotSize::S350x600,
        AdSlotSize::S768x1024,
        AdSlotSize::S1024x768,
    ];

    /// The seventeen dataset formats of Figure 12 (area order).
    pub const FIGURE12: [AdSlotSize; 17] = [
        AdSlotSize::S300x50,
        AdSlotSize::S320x50,
        AdSlotSize::S468x60,
        AdSlotSize::S200x200,
        AdSlotSize::S316x150,
        AdSlotSize::S728x90,
        AdSlotSize::S280x250,
        AdSlotSize::S120x600,
        AdSlotSize::S300x250,
        AdSlotSize::S336x280,
        AdSlotSize::S160x600,
        AdSlotSize::S800x130,
        AdSlotSize::S400x300,
        AdSlotSize::S320x480,
        AdSlotSize::S480x320,
        AdSlotSize::S300x600,
        AdSlotSize::S350x600,
    ];

    /// The seven sizes whose price distributions appear in Figures 13–14
    /// (the Turn subset), area order.
    pub const FIGURE13: [AdSlotSize; 7] = [
        AdSlotSize::S320x50,
        AdSlotSize::S468x60,
        AdSlotSize::S728x90,
        AdSlotSize::S120x600,
        AdSlotSize::S300x250,
        AdSlotSize::S160x600,
        AdSlotSize::S300x600,
    ];

    /// Smartphone formats a Table-5 campaign can buy.
    pub const SMARTPHONE_FORMATS: [AdSlotSize; 4] = [
        AdSlotSize::S320x50,
        AdSlotSize::S300x250,
        AdSlotSize::S320x480,
        AdSlotSize::S480x320,
    ];

    /// Tablet formats a Table-5 campaign can buy.
    pub const TABLET_FORMATS: [AdSlotSize; 4] = [
        AdSlotSize::S728x90,
        AdSlotSize::S300x250,
        AdSlotSize::S768x1024,
        AdSlotSize::S1024x768,
    ];

    /// `(width, height)` in CSS pixels.
    pub fn dimensions(self) -> (u32, u32) {
        match self {
            AdSlotSize::S300x50 => (300, 50),
            AdSlotSize::S320x50 => (320, 50),
            AdSlotSize::S468x60 => (468, 60),
            AdSlotSize::S200x200 => (200, 200),
            AdSlotSize::S316x150 => (316, 150),
            AdSlotSize::S728x90 => (728, 90),
            AdSlotSize::S280x250 => (280, 250),
            AdSlotSize::S120x600 => (120, 600),
            AdSlotSize::S300x250 => (300, 250),
            AdSlotSize::S336x280 => (336, 280),
            AdSlotSize::S160x600 => (160, 600),
            AdSlotSize::S800x130 => (800, 130),
            AdSlotSize::S400x300 => (400, 300),
            AdSlotSize::S320x480 => (320, 480),
            AdSlotSize::S480x320 => (480, 320),
            AdSlotSize::S300x600 => (300, 600),
            AdSlotSize::S350x600 => (350, 600),
            AdSlotSize::S768x1024 => (768, 1024),
            AdSlotSize::S1024x768 => (1024, 768),
        }
    }

    /// Width in pixels.
    pub fn width(self) -> u32 {
        self.dimensions().0
    }

    /// Height in pixels.
    pub fn height(self) -> u32 {
        self.dimensions().1
    }

    /// Screen area in square pixels — the quantity §4.4 shows does *not*
    /// correlate with price.
    pub fn area(self) -> u32 {
        let (w, h) = self.dimensions();
        w * h
    }

    /// The industry nickname, where one exists.
    pub fn nickname(self) -> Option<&'static str> {
        match self {
            AdSlotSize::S320x50 => Some("large mobile banner"),
            AdSlotSize::S728x90 => Some("leaderboard"),
            AdSlotSize::S300x250 => Some("MPU"),
            AdSlotSize::S300x600 => Some("Monster MPU"),
            AdSlotSize::S160x600 => Some("wide skyscraper"),
            AdSlotSize::S120x600 => Some("skyscraper"),
            _ => None,
        }
    }

    /// The `WxH` wire form carried in nURL parameters.
    pub fn wire(self) -> String {
        let (w, h) = self.dimensions();
        format!("{w}x{h}")
    }

    /// Parses the `WxH` wire form. The heap-free form of the [`FromStr`]
    /// impl, run once per notification URL carrying a `size` parameter:
    /// the textual match against [`Self::wire`] is a numeric match that
    /// additionally rejects non-canonical digits (leading zeros), so no
    /// candidate strings need rendering.
    pub fn parse_wire(s: &str) -> Option<AdSlotSize> {
        fn dim(part: &str) -> Option<u32> {
            let canonical =
                !part.is_empty() && (part.len() == 1 || !part.starts_with('0'));
            if canonical && part.bytes().all(|b| b.is_ascii_digit()) {
                part.parse().ok()
            } else {
                None
            }
        }
        let (w, h) = s.split_once('x')?;
        let dims = (dim(w)?, dim(h)?);
        AdSlotSize::EVERY.iter().find(|sz| sz.dimensions() == dims).copied()
    }
}

impl fmt::Display for AdSlotSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, h) = self.dimensions();
        write!(f, "{w}x{h}")
    }
}

/// Error returned when a `WxH` string is not a known ad-slot size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAdSlotSizeError(String);

impl fmt::Display for ParseAdSlotSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown ad-slot size: {:?}", self.0)
    }
}

impl std::error::Error for ParseAdSlotSizeError {}

impl FromStr for AdSlotSize {
    type Err = ParseAdSlotSizeError;

    /// See [`AdSlotSize::parse_wire`], which this delegates to.
    fn from_str(s: &str) -> Result<AdSlotSize, ParseAdSlotSizeError> {
        AdSlotSize::parse_wire(s).ok_or_else(|| ParseAdSlotSizeError(s.to_owned()))
    }
}

/// IAB Tech Lab tier-1 content categories, used both to label publishers
/// and to describe user interest profiles (Figures 11 and 15 report price
/// by IAB category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IabCategory {
    /// IAB1 — Arts & Entertainment.
    ArtsEntertainment,
    /// IAB2 — Automotive.
    Automotive,
    /// IAB3 — Business & Marketing.
    Business,
    /// IAB5 — Education.
    Education,
    /// IAB9 — Hobbies & Interests.
    Hobbies,
    /// IAB12 — News.
    News,
    /// IAB13 — Personal Finance.
    PersonalFinance,
    /// IAB15 — Science.
    Science,
    /// IAB17 — Sports.
    Sports,
    /// IAB19 — Technology & Computing.
    Technology,
    /// IAB20 — Travel.
    Travel,
    /// IAB22 — Shopping.
    Shopping,
    /// IAB4 — Careers.
    Careers,
    /// IAB7 — Health & Fitness.
    Health,
    /// IAB8 — Food & Drink.
    FoodDrink,
    /// IAB10 — Home & Garden.
    HomeGarden,
    /// IAB14 — Society.
    Society,
    /// IAB18 — Style & Fashion.
    StyleFashion,
}

impl IabCategory {
    /// The eighteen categories present in dataset *D* (Table 3 reports 18).
    pub const ALL: [IabCategory; 18] = [
        IabCategory::ArtsEntertainment,
        IabCategory::Automotive,
        IabCategory::Business,
        IabCategory::Education,
        IabCategory::Hobbies,
        IabCategory::News,
        IabCategory::PersonalFinance,
        IabCategory::Science,
        IabCategory::Sports,
        IabCategory::Technology,
        IabCategory::Travel,
        IabCategory::Shopping,
        IabCategory::Careers,
        IabCategory::Health,
        IabCategory::FoodDrink,
        IabCategory::HomeGarden,
        IabCategory::Society,
        IabCategory::StyleFashion,
    ];

    /// The ten categories whose cost CDFs appear in Figure 11.
    pub const FIGURE11: [IabCategory; 10] = [
        IabCategory::ArtsEntertainment,
        IabCategory::Automotive,
        IabCategory::Business,
        IabCategory::Education,
        IabCategory::Hobbies,
        IabCategory::News,
        IabCategory::Science,
        IabCategory::Sports,
        IabCategory::Technology,
        IabCategory::Shopping,
    ];

    /// The six categories common to both campaign notification types,
    /// compared in Figure 15.
    pub const FIGURE15: [IabCategory; 6] = [
        IabCategory::ArtsEntertainment,
        IabCategory::News,
        IabCategory::PersonalFinance,
        IabCategory::Sports,
        IabCategory::Technology,
        IabCategory::Travel,
    ];

    /// IAB tier-1 numeric code (e.g. Business & Marketing ⇒ 3).
    pub fn code(self) -> u32 {
        match self {
            IabCategory::ArtsEntertainment => 1,
            IabCategory::Automotive => 2,
            IabCategory::Business => 3,
            IabCategory::Careers => 4,
            IabCategory::Education => 5,
            IabCategory::Health => 7,
            IabCategory::FoodDrink => 8,
            IabCategory::Hobbies => 9,
            IabCategory::HomeGarden => 10,
            IabCategory::News => 12,
            IabCategory::PersonalFinance => 13,
            IabCategory::Society => 14,
            IabCategory::Science => 15,
            IabCategory::Sports => 17,
            IabCategory::StyleFashion => 18,
            IabCategory::Technology => 19,
            IabCategory::Travel => 20,
            IabCategory::Shopping => 22,
        }
    }

    /// Figure-axis label, e.g. `"IAB3"`.
    pub fn label(self) -> String {
        format!("IAB{}", self.code())
    }

    /// Descriptive name of the category.
    pub fn name(self) -> &'static str {
        match self {
            IabCategory::ArtsEntertainment => "Arts & Entertainment",
            IabCategory::Automotive => "Automotive",
            IabCategory::Business => "Business & Marketing",
            IabCategory::Careers => "Careers",
            IabCategory::Education => "Education",
            IabCategory::Health => "Health & Fitness",
            IabCategory::FoodDrink => "Food & Drink",
            IabCategory::Hobbies => "Hobbies & Interests",
            IabCategory::HomeGarden => "Home & Garden",
            IabCategory::News => "News",
            IabCategory::PersonalFinance => "Personal Finance",
            IabCategory::Society => "Society",
            IabCategory::Science => "Science",
            IabCategory::Sports => "Sports",
            IabCategory::StyleFashion => "Style & Fashion",
            IabCategory::Technology => "Technology & Computing",
            IabCategory::Travel => "Travel",
            IabCategory::Shopping => "Shopping",
        }
    }

    /// Category from its IAB numeric code.
    pub fn from_code(code: u32) -> Option<IabCategory> {
        IabCategory::ALL.iter().copied().find(|c| c.code() == code)
    }

    /// 0-based dense index into [`IabCategory::ALL`] (for feature vectors).
    pub fn index(self) -> usize {
        IabCategory::ALL
            .iter()
            .position(|&c| c == self)
            .expect("category in ALL")
    }
}

impl fmt::Display for IabCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IAB{}", self.code())
    }
}

/// Whether a winning-price notification exposes its charge price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PriceVisibility {
    /// The charge price is readable in the nURL (e.g. `charge_price=0.95`).
    Cleartext,
    /// The charge price is an opaque ciphertext (e.g. a 28-byte
    /// DoubleClick-style token) that the observer cannot decrypt.
    Encrypted,
}

impl PriceVisibility {
    /// Both variants.
    pub const ALL: [PriceVisibility; 2] = [PriceVisibility::Cleartext, PriceVisibility::Encrypted];
}

impl fmt::Display for PriceVisibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PriceVisibility::Cleartext => "cleartext",
            PriceVisibility::Encrypted => "encrypted",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for sz in AdSlotSize::FIGURE12 {
            assert_eq!(sz.wire().parse::<AdSlotSize>().unwrap(), sz);
        }
        assert_eq!(
            "768x1024".parse::<AdSlotSize>().unwrap(),
            AdSlotSize::S768x1024
        );
        assert!("301x251".parse::<AdSlotSize>().is_err());
        assert!("banana".parse::<AdSlotSize>().is_err());
    }

    #[test]
    fn figure12_sorted_by_area() {
        for w in AdSlotSize::FIGURE12.windows(2) {
            assert!(
                w[0].area() <= w[1].area(),
                "{} should not outsize {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn nicknames() {
        assert_eq!(AdSlotSize::S300x250.nickname(), Some("MPU"));
        assert_eq!(AdSlotSize::S728x90.nickname(), Some("leaderboard"));
        assert_eq!(AdSlotSize::S200x200.nickname(), None);
    }

    #[test]
    fn iab_codes_round_trip() {
        for c in IabCategory::ALL {
            assert_eq!(IabCategory::from_code(c.code()), Some(c));
        }
        assert_eq!(IabCategory::from_code(99), None);
        assert_eq!(IabCategory::Business.label(), "IAB3");
        assert_eq!(IabCategory::Science.label(), "IAB15");
    }

    #[test]
    fn iab_indices_are_dense() {
        for (i, c) in IabCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn campaign_formats_are_four_each() {
        assert_eq!(AdSlotSize::SMARTPHONE_FORMATS.len(), 4);
        assert_eq!(AdSlotSize::TABLET_FORMATS.len(), 4);
    }
}
