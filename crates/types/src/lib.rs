//! Shared vocabulary for the `your-ad-value` workspace.
//!
//! This crate defines the domain types every other crate speaks in:
//!
//! * [`Cpm`] — fixed-point charge prices in cost-per-mille, the unit every
//!   RTB notification carries;
//! * [`SimTime`] — the simulated clock (minutes since 2015-01-01 00:00 UTC)
//!   with a hand-rolled Gregorian calendar, so the whole workspace is free
//!   of wall-clock dependencies and fully deterministic;
//! * geography ([`City`]), devices ([`Os`], [`DeviceType`],
//!   [`InteractionType`]), ad formats ([`AdSlotSize`]), content taxonomy
//!   ([`IabCategory`]) and market entities ([`Adx`], [`DspId`]);
//! * opaque identifiers ([`UserId`], [`AuctionId`], [`ImpressionId`],
//!   [`CampaignId`]).
//!
//! Everything here is `Copy` or cheaply clonable, `serde`-serialisable and
//! ordered, so the simulation, analyzer and modeling crates can use these
//! types as map keys and feature values without conversion layers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ad;
pub mod device;
pub mod entity;
pub mod geo;
pub mod ids;
pub mod price;
pub mod time;

pub use ad::{AdSlotSize, IabCategory, PriceVisibility};
pub use device::{DeviceType, InteractionType, Os};
pub use entity::{Adx, DspId};
pub use geo::City;
pub use ids::{AuctionId, CampaignId, ImpressionId, PublisherId, UserId};
pub use price::{Cpm, MicroUsd};
pub use time::{DayOfWeek, Month, SimTime, TimeOfDay, MINUTES_PER_DAY};
