//! Opaque identifiers.
//!
//! Newtype wrappers so the simulator cannot confuse a user with an auction
//! or a campaign. All ids are dense `u64`/`u32` indices assigned by their
//! owning subsystem; wire formats render them as hexadecimal tokens (the
//! `ID` placeholders of Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Renders the id as the hexadecimal token carried in nURLs.
            pub fn wire(self) -> String {
                let mut out = String::with_capacity(16);
                self.wire_into(&mut out);
                out
            }

            /// Appends the wire token to `buf` without allocating (beyond
            /// any growth of `buf` itself) — the hot-path form used by the
            /// allocation-free nURL renderer.
            pub fn wire_into(self, buf: &mut String) {
                // Mix the bits so consecutive ids don't look consecutive on
                // the wire (real exchanges emit opaque tokens). This is the
                // splitmix64 finaliser — a bijection, so ids stay unique.
                let mut z = (self.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                const HEX: &[u8; 16] = b"0123456789abcdef";
                for shift in (0..16).rev() {
                    buf.push(HEX[((z >> (shift * 4)) & 0xf) as usize] as char);
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type! {
    /// A panel user (one of the 1 594 volunteers of dataset *D*).
    UserId(u32)
}
id_type! {
    /// One RTB auction instance.
    AuctionId(u64)
}
id_type! {
    /// One delivered ad impression.
    ImpressionId(u64)
}
id_type! {
    /// An advertiser's ad-campaign.
    CampaignId(u32)
}
id_type! {
    /// A publisher (website or mobile app).
    PublisherId(u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn wire_tokens_are_unique_and_opaque() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let tok = AuctionId(i).wire();
            assert_eq!(tok.len(), 16);
            assert!(tok.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(seen.insert(tok), "collision at {i}");
        }
    }

    #[test]
    fn wire_into_matches_wire() {
        let mut buf = String::from("x=");
        AuctionId(12345).wire_into(&mut buf);
        assert_eq!(buf, format!("x={}", AuctionId(12345).wire()));
        for i in [0u32, 1, 255, u32::MAX] {
            let mut b = String::new();
            UserId(i).wire_into(&mut b);
            assert_eq!(b, UserId(i).wire());
        }
    }

    #[test]
    fn display_is_debuggable() {
        assert_eq!(UserId(7).to_string(), "UserId(7)");
        assert_eq!(CampaignId(3).raw(), 3);
    }
}
