//! Fixed-point monetary types.
//!
//! RTB charge prices are quoted in **CPM** (cost per mille, i.e. the price of
//! one thousand impressions), typically in US dollars. Floating point is a
//! poor fit for money — sums of millions of impressions accumulate error and
//! comparisons become fuzzy — so [`Cpm`] stores *micro-CPM* in an `i64`
//! (1 CPM == 1_000_000 micro-CPM). That gives a range of ±9.2e12 CPM at
//! micro-cent precision, vastly beyond anything the ad market produces.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Number of micro-units per whole CPM unit.
const MICROS: i64 = 1_000_000;

/// A charge price in cost-per-mille (CPM), fixed point with six decimal
/// digits of precision.
///
/// ```
/// use yav_types::Cpm;
/// let p = Cpm::from_f64(0.95);
/// assert_eq!(p.to_string(), "0.95");
/// assert_eq!(p + Cpm::from_f64(0.05), Cpm::from_f64(1.0));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cpm(i64);

impl Cpm {
    /// Zero CPM.
    pub const ZERO: Cpm = Cpm(0);
    /// One CPM (one dollar per thousand impressions).
    pub const ONE: Cpm = Cpm(MICROS);
    /// Largest representable price.
    pub const MAX: Cpm = Cpm(i64::MAX);

    /// Builds a price from raw micro-CPM units.
    pub const fn from_micros(micros: i64) -> Cpm {
        Cpm(micros)
    }

    /// Raw micro-CPM units.
    pub const fn micros(self) -> i64 {
        self.0
    }

    /// Builds a price from whole CPM units.
    pub const fn from_whole(cpm: i64) -> Cpm {
        Cpm(cpm * MICROS)
    }

    /// Converts from a floating-point CPM value, rounding to the nearest
    /// micro-CPM. Values outside the representable range saturate.
    pub fn from_f64(cpm: f64) -> Cpm {
        let micros = (cpm * MICROS as f64).round();
        if micros >= i64::MAX as f64 {
            Cpm(i64::MAX)
        } else if micros <= i64::MIN as f64 {
            Cpm(i64::MIN)
        } else {
            Cpm(micros as i64)
        }
    }

    /// The price as a floating-point CPM value (for statistics, not money).
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICROS as f64
    }

    /// Natural logarithm of the CPM value, used by the price-modeling
    /// pipeline's log-normalisation step. Non-positive prices map to the
    /// log of one micro-CPM (the smallest positive representable price) so
    /// the transform is total.
    pub fn ln(self) -> f64 {
        let v = self.as_f64();
        if v > 0.0 {
            v.ln()
        } else {
            (1.0 / MICROS as f64).ln()
        }
    }

    /// True if this price is strictly positive.
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Cpm) -> Cpm {
        Cpm(self.0.saturating_add(rhs.0))
    }

    /// Scales the price by a dimensionless factor, rounding to nearest.
    pub fn scale(self, factor: f64) -> Cpm {
        Cpm::from_f64(self.as_f64() * factor)
    }

    /// The revenue earned by *one* impression charged at this CPM.
    pub fn per_impression(self) -> MicroUsd {
        // CPM is per 1000 impressions; micro-CPM / 1000 = micro-USD per imp.
        MicroUsd(self.0 / 1000)
    }
}

impl Add for Cpm {
    type Output = Cpm;
    fn add(self, rhs: Cpm) -> Cpm {
        Cpm(self.0 + rhs.0)
    }
}

impl AddAssign for Cpm {
    fn add_assign(&mut self, rhs: Cpm) {
        self.0 += rhs.0;
    }
}

impl Sub for Cpm {
    type Output = Cpm;
    fn sub(self, rhs: Cpm) -> Cpm {
        Cpm(self.0 - rhs.0)
    }
}

impl SubAssign for Cpm {
    fn sub_assign(&mut self, rhs: Cpm) {
        self.0 -= rhs.0;
    }
}

impl Neg for Cpm {
    type Output = Cpm;
    fn neg(self) -> Cpm {
        Cpm(-self.0)
    }
}

impl Mul<i64> for Cpm {
    type Output = Cpm;
    fn mul(self, rhs: i64) -> Cpm {
        Cpm(self.0 * rhs)
    }
}

impl Div<i64> for Cpm {
    type Output = Cpm;
    fn div(self, rhs: i64) -> Cpm {
        Cpm(self.0 / rhs)
    }
}

impl Sum for Cpm {
    fn sum<I: Iterator<Item = Cpm>>(iter: I) -> Cpm {
        iter.fold(Cpm::ZERO, |acc, p| acc.saturating_add(p))
    }
}

impl<'a> Sum<&'a Cpm> for Cpm {
    fn sum<I: Iterator<Item = &'a Cpm>>(iter: I) -> Cpm {
        iter.copied().sum()
    }
}

impl fmt::Display for Cpm {
    /// Formats with the minimal number of decimal digits (what real nURLs
    /// carry, e.g. `charge_price=0.95`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let whole = abs / MICROS as u64;
        let frac = abs % MICROS as u64;
        if frac == 0 {
            return write!(f, "{sign}{whole}");
        }
        // Six zero-padded fractional digits with trailing zeros stripped,
        // rendered through a stack buffer: Display sits on the nURL
        // render hot path and must not allocate.
        let mut digits = [0u8; 6];
        let mut rest = frac;
        for d in digits.iter_mut().rev() {
            *d = b'0' + (rest % 10) as u8;
            rest /= 10;
        }
        let mut len = 6;
        while len > 1 && digits[len - 1] == b'0' {
            len -= 1;
        }
        let frac_str = std::str::from_utf8(&digits[..len]).map_err(|_| fmt::Error)?;
        write!(f, "{sign}{whole}.{frac_str}")
    }
}

/// Error returned when parsing a [`Cpm`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCpmError {
    input: String,
}

impl fmt::Display for ParseCpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CPM price: {:?}", self.input)
    }
}

impl std::error::Error for ParseCpmError {}

impl Cpm {
    /// Parses decimal prices as they appear in notification URLs, e.g.
    /// `"0.95"`, `"1"`, `"12.5"`. Scientific notation and signs other than a
    /// single leading `-` are rejected.
    ///
    /// The heap-free form of the [`FromStr`] impl: price screening runs
    /// once per notification URL, and most screened values are encrypted
    /// tokens that *must* fail — an error type carrying the input would
    /// make rejection itself allocate.
    pub fn parse_str(s: &str) -> Option<Cpm> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if body.is_empty() {
            return None;
        }
        let (whole_str, frac_str) = match body.split_once('.') {
            Some((w, fr)) => (w, fr),
            None => (body, ""),
        };
        if whole_str.is_empty() && frac_str.is_empty() {
            return None;
        }
        if !whole_str.bytes().all(|b| b.is_ascii_digit())
            || !frac_str.bytes().all(|b| b.is_ascii_digit())
        {
            return None;
        }
        // More precision than micro-CPM: truncate (real exchanges quote
        // at micro precision or coarser, but be liberal in what we accept).
        let frac_str = &frac_str[..frac_str.len().min(6)];
        let whole: i64 = if whole_str.is_empty() {
            0
        } else {
            whole_str.parse().ok()?
        };
        let mut frac: i64 = 0;
        if !frac_str.is_empty() {
            frac = frac_str.parse().ok()?;
            frac *= 10_i64.pow(6 - frac_str.len() as u32);
        }
        let micros = whole.checked_mul(MICROS)?.checked_add(frac)?;
        Some(Cpm(if neg { -micros } else { micros }))
    }
}

impl FromStr for Cpm {
    type Err = ParseCpmError;

    /// See [`Cpm::parse_str`], which this delegates to.
    fn from_str(s: &str) -> Result<Cpm, ParseCpmError> {
        Cpm::parse_str(s).ok_or_else(|| ParseCpmError {
            input: s.to_owned(),
        })
    }
}

/// An absolute amount of money in micro-US-dollars (1 USD == 1_000_000).
///
/// Used for campaign budgets and aggregate revenue, where CPM (a *rate*)
/// would be the wrong unit.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MicroUsd(pub i64);

impl MicroUsd {
    /// Zero dollars.
    pub const ZERO: MicroUsd = MicroUsd(0);

    /// Builds an amount from whole dollars.
    pub const fn from_dollars(d: i64) -> MicroUsd {
        MicroUsd(d * MICROS)
    }

    /// The amount as floating-point dollars.
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / MICROS as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: MicroUsd) -> MicroUsd {
        MicroUsd(self.0.saturating_add(rhs.0))
    }
}

impl Add for MicroUsd {
    type Output = MicroUsd;
    fn add(self, rhs: MicroUsd) -> MicroUsd {
        MicroUsd(self.0 + rhs.0)
    }
}

impl AddAssign for MicroUsd {
    fn add_assign(&mut self, rhs: MicroUsd) {
        self.0 += rhs.0;
    }
}

impl Sub for MicroUsd {
    type Output = MicroUsd;
    fn sub(self, rhs: MicroUsd) -> MicroUsd {
        MicroUsd(self.0 - rhs.0)
    }
}

impl Sum for MicroUsd {
    fn sum<I: Iterator<Item = MicroUsd>>(iter: I) -> MicroUsd {
        iter.fold(MicroUsd::ZERO, |acc, p| acc.saturating_add(p))
    }
}

impl fmt::Display for MicroUsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.as_dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_minimal_digits() {
        assert_eq!(Cpm::from_f64(0.95).to_string(), "0.95");
        assert_eq!(Cpm::from_whole(3).to_string(), "3");
        assert_eq!(Cpm::from_micros(1).to_string(), "0.000001");
        assert_eq!(Cpm::from_f64(-1.5).to_string(), "-1.5");
        assert_eq!(Cpm::ZERO.to_string(), "0");
    }

    #[test]
    fn parse_round_trips() {
        for s in ["0.95", "1", "12.5", "0.000001", "-2.25", "100"] {
            let p: Cpm = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-", ".", "1e3", "0x10", "1.2.3", "price", " 1", "1 "] {
            assert!(s.parse::<Cpm>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn parse_accepts_partial_forms() {
        assert_eq!("0.5".parse::<Cpm>().unwrap(), Cpm::from_f64(0.5));
        assert_eq!(".5".parse::<Cpm>().unwrap(), Cpm::from_f64(0.5));
        assert_eq!("5.".parse::<Cpm>().unwrap(), Cpm::from_whole(5));
    }

    #[test]
    fn parse_truncates_excess_precision() {
        assert_eq!(
            "0.1234567899".parse::<Cpm>().unwrap(),
            Cpm::from_micros(123_456)
        );
    }

    #[test]
    fn arithmetic() {
        let a = Cpm::from_f64(1.5);
        let b = Cpm::from_f64(0.5);
        assert_eq!(a + b, Cpm::from_whole(2));
        assert_eq!(a - b, Cpm::ONE);
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, Cpm::from_f64(0.5));
        assert_eq!([a, b, b].iter().sum::<Cpm>(), Cpm::from_f64(2.5));
    }

    #[test]
    fn per_impression_revenue() {
        // 2 CPM over 1000 impressions is 2 dollars.
        let per_imp = Cpm::from_whole(2).per_impression();
        assert_eq!(per_imp.0 * 1000, MicroUsd::from_dollars(2).0);
    }

    #[test]
    fn ln_total_on_nonpositive() {
        assert!(Cpm::ZERO.ln().is_finite());
        assert!(Cpm::from_whole(-5).ln().is_finite());
        assert!((Cpm::ONE.ln() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_saturate() {
        assert_eq!(Cpm::from_whole(2).scale(1.7), Cpm::from_f64(3.4));
        assert_eq!(Cpm::MAX.saturating_add(Cpm::ONE), Cpm::MAX);
        assert_eq!(Cpm::from_f64(f64::MAX), Cpm::MAX);
    }
}
