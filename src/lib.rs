//! `your-ad-value` — a Rust reproduction of *"If you are not paying for
//! it, you are the product: How much do advertisers pay to reach you?"*
//! (Papadopoulos, Kourtellis, Rodriguez Rodriguez, Laoutaris — IMC 2017).
//!
//! The paper builds a real-time methodology for estimating how much the
//! RTB advertising ecosystem pays to reach an individual user, including
//! the charge prices that exchanges deliver **encrypted**. This workspace
//! rebuilds the whole stack in Rust — the RTB market it measures, the
//! measurement pipeline, the machine-learning estimator and the
//! client-side tool — as documented in `DESIGN.md`.
//!
//! # Crate map
//!
//! | layer | crate | role |
//! |---|---|---|
//! | vocabulary | [`types`] | prices, simulated time, geography, formats, entities |
//! | substrate | [`stats`] | quantiles, CDFs, KS tests, sample-size maths |
//! | substrate | [`exec`] | deterministic worker pools, shard seed derivation |
//! | substrate | [`crypto`] | SHA-256/HMAC and the 28-byte encrypted-price token |
//! | wire | [`nurl`] | notification-URL templates, detection, price extraction |
//! | market | [`auction`] | publishers, exchanges, DSPs, Vickrey auctions |
//! | world | [`weblog`] | the 1 594-user panel and its year of browsing |
//! | pipeline | [`analyzer`] | traffic classification, enrichment, 288 features |
//! | substrate | [`ml`] | discretisation, CART, random forests, CV, metrics |
//! | harness | [`campaign`] | the Table-5 probing ad-campaigns (A1 / A2) |
//! | engine | [`pme`] | feature reduction, model training, model serving |
//! | product | [`core`] | **YourAdValue**: the client that answers the question |
//!
//! # Quickstart
//!
//! ```
//! use your_ad_value::prelude::*;
//!
//! // A miniature world: market + user panel.
//! let mut market = Market::new(MarketConfig::default());
//! let generator = WeblogGenerator::new(WeblogConfig::tiny());
//!
//! // Ground truth for encrypted prices comes from a probing campaign.
//! let universe = generator.universe().clone();
//! let report = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(6));
//!
//! // The PME trains the estimator; the client downloads it.
//! let pme = Pme::new();
//! pme.train_from_campaign(&report.rows, &TrainConfig::quick());
//! let mut yav = YourAdValue::new(None);
//! assert!(yav.refresh_model(&pme));
//!
//! // Stream browsing traffic through the client.
//! generator.run(&mut market, |req| { yav.observe(&req); }, |_| {});
//! let summary = yav.ledger().summary();
//! assert!(summary.total().is_positive());
//! println!("advertisers paid ≈ {} CPM for this panel", summary.total());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use yav_analyzer as analyzer;
pub use yav_auction as auction;
pub use yav_campaign as campaign;
pub use yav_core as core;
pub use yav_crypto as crypto;
pub use yav_exec as exec;
pub use yav_ml as ml;
pub use yav_nurl as nurl;
pub use yav_pme as pme;
pub use yav_stats as stats;
pub use yav_telemetry as telemetry;
pub use yav_trace as trace;
pub use yav_types as types;
pub use yav_weblog as weblog;

/// The names almost every program needs.
pub mod prelude {
    pub use crate::campaign;
    pub use yav_analyzer::{AnalyzerReport, WeblogAnalyzer};
    pub use yav_auction::{Market, MarketConfig};
    pub use yav_campaign::Campaign;
    pub use yav_core::{per_user_costs, Ledger, UserCost, YourAdValue};
    pub use yav_exec::ExecConfig;
    pub use yav_pme::model::TrainConfig;
    pub use yav_pme::{Pme, TimeShift};
    pub use yav_telemetry as telemetry;
    pub use yav_trace as trace;
    pub use yav_types::{Adx, City, Cpm, PriceVisibility, SimTime, UserId};
    pub use yav_weblog::{WeblogConfig, WeblogGenerator};
}
