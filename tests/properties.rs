//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs, checked with proptest through the public facade.

use proptest::prelude::*;
use your_ad_value::crypto::{EncryptedPrice, PriceCrypter, PriceKeys};
use your_ad_value::nurl::fields::{NurlFields, PricePayload};
use your_ad_value::nurl::{template, NurlDetector, Url};
use your_ad_value::types::{AuctionId, Cpm, DspId, ImpressionId};

proptest! {
    /// Any price emitted by any exchange template is re-detected with the
    /// same visibility and (when cleartext) the same value.
    #[test]
    fn emit_detect_agrees(
        adx_idx in 0usize..17,
        dsp in 0u32..100,
        micros in 1i64..50_000_000,
        encrypted in proptest::bool::ANY,
        iv: [u8; 16],
    ) {
        let adx = your_ad_value::types::Adx::from_index(adx_idx);
        let price = if encrypted {
            let c = PriceCrypter::new(PriceKeys::derive("prop"));
            PricePayload::Encrypted(c.encrypt(micros as u64, iv))
        } else {
            PricePayload::Cleartext(Cpm::from_micros(micros))
        };
        let fields = NurlFields::minimal(adx, DspId(dsp), price, ImpressionId(1), AuctionId(2));
        let url = template::emit(&fields);
        let det = NurlDetector::new().detect(&url).expect("own emission must detect");
        prop_assert_eq!(det.adx, adx);
        prop_assert_eq!(det.price.is_encrypted(), encrypted);
        if !encrypted {
            prop_assert_eq!(det.price.cleartext(), Some(Cpm::from_micros(micros)));
        }
    }

    /// URL round-trip: display ∘ parse is the identity on parsed URLs.
    #[test]
    fn url_display_parse_identity(
        host_label in "[a-z][a-z0-9]{0,10}",
        path_seg in "[a-zA-Z0-9._-]{0,12}",
        key in "[a-zA-Z0-9_]{1,8}",
        value in "\\PC{0,30}",
    ) {
        let url = Url::build(false, &format!("{host_label}.example"), &format!("/{path_seg}"))
            .param(&key, &value)
            .finish();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(reparsed, url);
    }

    /// Price tokens survive arbitrary wire transport (their base64url
    /// form is URL-safe by construction, even percent-encoded).
    #[test]
    fn token_survives_query_embedding(micros in 0u64..u64::MAX / 2, iv: [u8; 16]) {
        let c = PriceCrypter::new(PriceKeys::derive("transport"));
        let token = c.encrypt(micros, iv);
        let url = Url::build(true, "x.example", "/cb").param("p", &token.to_wire()).finish();
        let back = Url::parse(&url.to_string()).unwrap();
        let recovered = EncryptedPrice::from_wire(back.query("p").unwrap()).unwrap();
        prop_assert_eq!(c.decrypt(&recovered).unwrap(), micros);
    }

    /// CPM string form round-trips for any micro value.
    #[test]
    fn cpm_wire_round_trip(micros in -1_000_000_000_000i64..1_000_000_000_000) {
        let p = Cpm::from_micros(micros);
        let parsed: Cpm = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// The discretiser's class assignment is monotone in price and its
    /// representative prices invert it.
    #[test]
    fn discretizer_monotone(seed in 1u64..5000) {
        // A deterministic two-cluster sample parameterised by the seed.
        let prices: Vec<f64> = (0..200)
            .map(|i| {
                let base = if i % 2 == 0 { 0.1 } else { 2.0 };
                base * (1.0 + ((i as u64 * seed) % 97) as f64 / 97.0)
            })
            .collect();
        let d = your_ad_value::ml::Discretizer::fit(&prices, 4);
        let mut last = 0usize;
        for i in 0..100 {
            let x = 0.01 * 1.12f64.powi(i);
            let c = d.assign(x);
            prop_assert!(c >= last);
            last = c;
        }
        for c in 0..4 {
            prop_assert_eq!(d.assign(d.class_price(c)), c);
        }
    }
}

// Ecdf invariants under arbitrary samples.
proptest! {
    #[test]
    fn ecdf_is_a_cdf(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = your_ad_value::stats::Ecdf::new(&values);
        // Monotone and bounded.
        let mut last = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 1e5;
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last);
            last = f;
        }
        // Everything ≤ max is everything.
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.eval(max), 1.0);
    }
}
