//! Privacy and information-flow invariants.
//!
//! The system's design promises: (a) the observer side can never read an
//! encrypted price; (b) the client estimates locally and only uploads
//! anonymised contexts on explicit opt-in; (c) honest pipeline stages
//! never touch simulator ground truth. These tests pin those properties
//! at the API boundary.

use your_ad_value::crypto::{EncryptedPrice, PriceCrypter, PriceKeys};
use your_ad_value::prelude::*;

#[test]
fn encrypted_tokens_are_opaque_to_observers() {
    // Everything a detection exposes about an encrypted price is the
    // token's wire form; decoding it without the integration keys fails
    // closed.
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let mut analyzer = WeblogAnalyzer::new();
    generator.run(
        &mut market,
        |req| {
            analyzer.ingest(&req);
        },
        |_| {},
    );
    let report = analyzer.finish();

    let wrong_keys = PriceCrypter::new(PriceKeys::derive("attacker guess"));
    let mut tokens = 0;
    for det in &report.detections {
        if let Some(wire) = &det.encrypted_token_wire {
            tokens += 1;
            assert!(
                det.cleartext_cpm.is_none(),
                "encrypted detections carry no price"
            );
            let token = EncryptedPrice::from_wire(wire).expect("token shape is public");
            assert!(
                wrong_keys.decrypt(&token).is_err(),
                "wrong keys must never decrypt a real token"
            );
        }
    }
    assert!(
        tokens > 0,
        "the trace should contain encrypted notifications"
    );
}

#[test]
fn identical_prices_produce_unlinkable_tokens() {
    // Token unlinkability: an observer cannot even tell whether two
    // encrypted notifications carried the same price.
    let c = PriceCrypter::new(PriceKeys::derive("some integration"));
    let t1 = c.encrypt(1_000_000, [1u8; 16]);
    let t2 = c.encrypt(1_000_000, [2u8; 16]);
    assert_ne!(t1.to_wire(), t2.to_wire());
    // And the price field bytes share nothing recognisable.
    let p1 = &t1.as_bytes()[16..24];
    let p2 = &t2.as_bytes()[16..24];
    assert_ne!(p1, p2);
}

#[test]
fn contributions_carry_no_user_identifier() {
    // Serialise a contribution batch and assert no user-id field exists
    // in the payload (the anonymity property of §3.3).
    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut yav = YourAdValue::new(Some(City::Madrid));
    generator.run(
        &mut market,
        |req| {
            yav.observe(&req);
        },
        |_| {},
    );

    let batch = yav.take_contributions();
    assert!(!batch.is_empty());
    let json = serde_json::to_string(&batch).unwrap();
    assert!(
        !json.contains("\"user\""),
        "contribution payload must not name users"
    );
    assert!(
        !json.contains("user_id"),
        "contribution payload must not name users"
    );
}

#[test]
fn estimation_happens_client_side() {
    // With a model installed, estimating requires no further PME calls:
    // the engine can be dropped before any traffic is observed.
    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let universe = generator.universe().clone();
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(8));

    let model = {
        let pme = Pme::new();
        pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
        pme.current_model().unwrap()
        // `pme` dropped here.
    };

    let mut yav = YourAdValue::new(None);
    yav.install_model(model);
    generator.run(
        &mut market,
        |req| {
            yav.observe(&req);
        },
        |_| {},
    );
    let s = yav.ledger().summary();
    assert!(s.encrypted_count > 0, "estimates flowed without a live PME");
}
