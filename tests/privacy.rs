//! Privacy and information-flow invariants.
//!
//! The system's design promises: (a) the observer side can never read an
//! encrypted price; (b) the client estimates locally and only uploads
//! anonymised contexts on explicit opt-in; (c) honest pipeline stages
//! never touch simulator ground truth. These tests pin those properties
//! at the API boundary.

use your_ad_value::crypto::{EncryptedPrice, PriceCrypter, PriceKeys};
use your_ad_value::prelude::*;

#[test]
fn encrypted_tokens_are_opaque_to_observers() {
    // Everything a detection exposes about an encrypted price is the
    // token's wire form; decoding it without the integration keys fails
    // closed.
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let mut analyzer = WeblogAnalyzer::new();
    generator.run(
        &mut market,
        |req| {
            analyzer.ingest(&req);
        },
        |_| {},
    );
    let report = analyzer.finish();

    let wrong_keys = PriceCrypter::new(PriceKeys::derive("attacker guess"));
    let mut tokens = 0;
    for det in &report.detections {
        if let Some(wire) = &det.encrypted_token_wire {
            tokens += 1;
            assert!(
                det.cleartext_cpm.is_none(),
                "encrypted detections carry no price"
            );
            let token = EncryptedPrice::from_wire(wire).expect("token shape is public");
            assert!(
                wrong_keys.decrypt(&token).is_err(),
                "wrong keys must never decrypt a real token"
            );
        }
    }
    assert!(
        tokens > 0,
        "the trace should contain encrypted notifications"
    );
}

#[test]
fn identical_prices_produce_unlinkable_tokens() {
    // Token unlinkability: an observer cannot even tell whether two
    // encrypted notifications carried the same price.
    let c = PriceCrypter::new(PriceKeys::derive("some integration"));
    let t1 = c.encrypt(1_000_000, [1u8; 16]);
    let t2 = c.encrypt(1_000_000, [2u8; 16]);
    assert_ne!(t1.to_wire(), t2.to_wire());
    // And the price field bytes share nothing recognisable.
    let p1 = &t1.as_bytes()[16..24];
    let p2 = &t2.as_bytes()[16..24];
    assert_ne!(p1, p2);
}

#[test]
fn contributions_carry_no_user_identifier() {
    // Serialise a contribution batch and assert no user-id field exists
    // in the payload (the anonymity property of §3.3).
    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut yav = YourAdValue::new(Some(City::Madrid));
    generator.run(
        &mut market,
        |req| {
            yav.observe(&req);
        },
        |_| {},
    );

    let batch = yav.take_contributions();
    assert!(!batch.is_empty());
    let json = serde_json::to_string(&batch).unwrap();
    assert!(
        !json.contains("\"user\""),
        "contribution payload must not name users"
    );
    assert!(
        !json.contains("user_id"),
        "contribution payload must not name users"
    );
}

#[test]
fn estimation_happens_client_side() {
    // With a model installed, estimating requires no further PME calls:
    // the engine can be dropped before any traffic is observed.
    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let universe = generator.universe().clone();
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(8));

    let model = {
        let pme = Pme::new();
        pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
        pme.current_model().unwrap()
        // `pme` dropped here.
    };

    let mut yav = YourAdValue::new(None);
    yav.install_model(model);
    generator.run(
        &mut market,
        |req| {
            yav.observe(&req);
        },
        |_| {},
    );
    let s = yav.ledger().summary();
    assert!(s.encrypted_count > 0, "estimates flowed without a live PME");
}

#[test]
fn exports_carry_no_raw_urls_and_no_per_user_ledger_state() {
    // The runtime counterpart of yav-lint's privacy-taint pass: run a
    // mid-scale world through the monitor with tracing on, then render
    // every export surface — Prometheus text, the JSON snapshot and the
    // Chrome trace — and assert none of them contains a raw URL, a
    // request host, or per-user ledger serialisation.
    use your_ad_value::telemetry;
    use your_ad_value::trace;

    let generator = WeblogGenerator::new(WeblogConfig::small());
    let mut market = Market::new(MarketConfig::default());
    let mut yav = YourAdValue::new(Some(City::Madrid));
    let mut urls: Vec<String> = Vec::new();
    trace::set_enabled(true);
    generator.run(
        &mut market,
        |req| {
            if urls.len() < 128 {
                urls.push(req.url.clone());
            }
            yav.observe(&req);
        },
        |_| {},
    );
    trace::set_enabled(false);

    let prometheus = telemetry::prometheus_text();
    let snapshot = telemetry::json_snapshot();
    let chrome = trace::chrome_trace_json(&trace::drain());

    assert!(!urls.is_empty(), "the world produced no requests");
    assert!(
        prometheus.contains("yav_"),
        "the sim should have registered metrics"
    );

    for (surface, text) in [
        ("prometheus", &prometheus),
        ("json_snapshot", &snapshot),
        ("chrome_trace", &chrome),
    ] {
        for url in &urls {
            assert!(
                !text.contains(url.as_str()),
                "{surface} export contains a raw URL: {url}"
            );
            // The host alone is already identifying (browsing history).
            let host = url
                .split_once("://")
                .map_or(url.as_str(), |(_, rest)| rest)
                .split('/')
                .next()
                .unwrap_or_default();
            if host.len() >= 8 {
                assert!(
                    !text.contains(host),
                    "{surface} export contains a request host: {host}"
                );
            }
        }
        // Field names that only appear when a request or a ledger entry
        // is serialised wholesale (aggregate metric *names* like
        // `ledger_cleartext_cpm` are fine — they are sums, not rows).
        for marker in ["user_id", "\"user\"", "\"url\"", "user_agent"] {
            assert!(
                !text.contains(marker),
                "{surface} export contains per-user serialisation: {marker}"
            );
        }
    }
}
