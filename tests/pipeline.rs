//! End-to-end pipeline integration: generator → analyzer → PME →
//! YourAdValue, exercised through the public facade only.

use your_ad_value::core::methodology::PopulationSummary;
use your_ad_value::prelude::*;
use your_ad_value::weblog::GroundTruth;

/// One shared world for the whole test file (building it is the
/// expensive part).
struct World {
    report: AnalyzerReport,
    truth: Vec<GroundTruth>,
    a1: your_ad_value::campaign::CampaignReport,
    a2: your_ad_value::campaign::CampaignReport,
    pme: Pme,
}

fn build_world() -> World {
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let mut analyzer = WeblogAnalyzer::new();
    let mut truth = Vec::new();
    generator.run(
        &mut market,
        |req| {
            analyzer.ingest(&req);
        },
        |t| truth.push(t),
    );
    let report = analyzer.finish();

    let universe = generator.universe().clone();
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(15));
    let a2 = campaign::execute(&mut market, &universe, &Campaign::a2().scaled(10));

    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
    World {
        report,
        truth,
        a1,
        a2,
        pme,
    }
}

#[test]
fn full_pipeline_reproduces_the_headline_quantities() {
    let w = build_world();

    // --- Detection completeness: the analyzer sees exactly the sold
    //     impressions the market produced.
    assert_eq!(w.report.detections.len(), w.truth.len());

    // --- The encrypted share of mobile RTB sits in the paper's band.
    let enc = w
        .report
        .detections
        .iter()
        .filter(|d| d.visibility == PriceVisibility::Encrypted)
        .count();
    let share = enc as f64 / w.report.detections.len() as f64;
    assert!((0.18..=0.42).contains(&share), "encrypted share {share:.2}");

    // --- §6.1: the campaign-measured encrypted premium.
    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let ratio = med(w.a1.prices_cpm()) / med(w.a2.prices_cpm());
    assert!(
        (1.25..=2.4).contains(&ratio),
        "encrypted premium {ratio:.2}"
    );

    // --- §6.2: per-user accounting with the time-shift correction.
    let historical: Vec<f64> = w
        .report
        .detections
        .iter()
        .filter(|d| d.adx == Adx::MoPub)
        .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
        .collect();
    let shift = w.pme.fit_time_shift(&historical, &w.a2.prices_cpm());
    assert!(shift.coefficient > 1.0, "2016 prices above 2015: {shift:?}");

    let model = w.pme.current_model().expect("trained");
    let costs = per_user_costs(&w.report.detections, &model, &shift);
    let summary = PopulationSummary::of(&costs);
    assert!(summary.users > 10);
    assert!(summary.median_total > 0.0);
    assert!(summary.encrypted_uplift > 0.0);

    // --- Cleartext tallies are *exact* against ground truth.
    let total_clear_truth: f64 = w
        .truth
        .iter()
        .filter(|t| t.visibility == PriceVisibility::Cleartext)
        .map(|t| t.charge.as_f64())
        .sum();
    let total_clear_tallied: f64 = costs.iter().map(|c| c.cleartext.as_f64()).sum();
    assert!((total_clear_truth - total_clear_tallied).abs() < 1e-6);

    // --- Estimated encrypted totals track the (hidden) truth.
    let total_enc_truth: f64 = w
        .truth
        .iter()
        .filter(|t| t.visibility == PriceVisibility::Encrypted)
        .map(|t| t.charge.as_f64())
        .sum();
    let total_enc_est: f64 = costs.iter().map(|c| c.encrypted_estimated.as_f64()).sum();
    let agg_ratio = total_enc_est / total_enc_truth;
    // The class-based estimator is median-faithful but conservative on
    // sums: the heavy tail lies beyond its class representatives (see
    // EXPERIMENTS.md, "truth"). Whale users carry most of the true
    // encrypted spend, yet the probe's max-bid cap keeps them out of the
    // training data and the core feature set has no user-value signal,
    // so aggregate ratios sit well below 1. A wide band still catches
    // regressions.
    assert!(
        (0.1..=2.0).contains(&agg_ratio),
        "estimated/true encrypted aggregate {agg_ratio:.2}"
    );
}

#[test]
fn client_and_offline_methodology_agree() {
    // The YourAdValue client and the offline per-user driver implement
    // the same equations; on identical traffic with the same model their
    // sums must agree (the client lacks geo enrichment, so compare only
    // totals that don't depend on city — i.e. run the model without the
    // city feature mattering: compare cleartext exactly, encrypted counts
    // exactly).
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let mut analyzer = WeblogAnalyzer::new();
    let mut clients: std::collections::HashMap<UserId, YourAdValue> =
        std::collections::HashMap::new();

    let universe = generator.universe().clone();
    let mut campaign_market = Market::new(MarketConfig::default());
    let a1 = campaign::execute(&mut campaign_market, &universe, &Campaign::a1().scaled(10));
    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
    let model = pme.current_model().unwrap();

    let panel = generator.panel().users().to_vec();
    generator.run(
        &mut market,
        |req| {
            analyzer.ingest(&req);
            let home = panel.get(req.user.0 as usize).map(|u| u.home);
            let client = clients.entry(req.user).or_insert_with(|| {
                let mut c = YourAdValue::new(home);
                c.install_model(model.clone());
                c
            });
            client.observe(&req);
        },
        |_| {},
    );
    let report = analyzer.finish();
    let costs = per_user_costs(&report.detections, &model, &TimeShift::fit(&[1.0], &[1.0]));

    for cost in &costs {
        let client = &clients[&cost.user];
        let s = client.ledger().summary();
        assert_eq!(
            s.cleartext, cost.cleartext,
            "user {:?} cleartext",
            cost.user
        );
        assert_eq!(s.cleartext_count, cost.cleartext_count);
        assert_eq!(s.encrypted_count, cost.encrypted_count);
    }
}

#[test]
fn determinism_end_to_end() {
    let a = build_world();
    let b = build_world();
    assert_eq!(a.truth, b.truth);
    assert_eq!(a.report.detections, b.report.detections);
    assert_eq!(a.a1.rows.len(), b.a1.rows.len());
    assert_eq!(a.a1.spent, b.a1.spent);
    let ma = a.pme.current_model().unwrap();
    let mb = b.pme.current_model().unwrap();
    assert_eq!(ma, mb);
}
