//! Failure injection: the measurement pipeline faces traffic it did not
//! generate — corrupted notifications, truncated tokens, hostile query
//! strings, absurd user agents. Nothing may panic; malformed
//! notifications must be counted, not silently swallowed as ordinary
//! traffic.

use your_ad_value::analyzer::WeblogAnalyzer;
use your_ad_value::nurl::{template, NurlDetector, Url};
use your_ad_value::prelude::*;
use your_ad_value::types::{AuctionId, DspId, ImpressionId};
use your_ad_value::weblog::HttpRequest;

fn req(url: &str) -> HttpRequest {
    HttpRequest {
        time: SimTime::from_ymd_hm(2015, 6, 1, 12, 0),
        user: UserId(1),
        url: url.to_owned(),
        client_ip: 0x0A28_0001, // 10.40.0.1 => Madrid pool
        user_agent: "Mozilla/5.0 (Linux; Android 5.1) Chrome/43.0 Mobile".into(),
        bytes: 100,
        duration_ms: 10,
    }
}

/// A well-formed notification to corrupt.
fn good_nurl() -> String {
    let fields = your_ad_value::nurl::NurlFields::minimal(
        Adx::MoPub,
        DspId(1),
        your_ad_value::nurl::PricePayload::Cleartext(Cpm::from_f64(0.5)),
        ImpressionId(9),
        AuctionId(9),
    );
    template::emit(&fields).to_string()
}

#[test]
fn corrupted_notifications_are_counted_not_crashed() {
    let good = good_nurl();
    let corruptions = [
        good.replace("0.5", "NaN"),
        good.replace("0.5", ""),
        good.replace("0.5", "1e99999"),
        // Mangle the impression id.
        {
            let u = Url::parse(&good).unwrap();
            let imp = u.query("imp").unwrap().to_owned();
            good.replace(&imp, "zz")
        },
    ];
    let mut analyzer = WeblogAnalyzer::new();
    for c in &corruptions {
        assert!(
            analyzer.ingest(&req(c)).is_none(),
            "corrupted nURL must not detect: {c}"
        );
    }
    let report = analyzer.finish();
    assert!(
        report.malformed_nurls >= 3,
        "malformed notifications must be accounted: {}",
        report.malformed_nurls
    );
    assert!(report.detections.is_empty());
}

#[test]
fn hostile_urls_never_panic() {
    let mut analyzer = WeblogAnalyzer::new();
    let mut yav = YourAdValue::new(None);
    let hostiles = [
        "",
        "http://",
        "http:///",
        "not a url",
        "javascript:alert(1)",
        "http://cpp.imp.mpx.mopub.com/imp?%%%%%",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=%ff%fe",
        &format!("http://cpp.imp.mpx.mopub.com/imp?{}", "a=1&".repeat(5000)),
        &format!("http://x.example/{}", "z".repeat(100_000)),
        "http://tags.mathtag.com/notify/js?price=QUJDREVGR0g", // short token
        "http://tags.mathtag.com/notify/js?price=AAAA====",    // bad padding form
    ];
    for h in &hostiles {
        analyzer.ingest(&req(h)); // must not panic
        yav.observe(&req(h)); // must not panic
    }
    assert!(yav.ledger().is_empty());
}

#[test]
fn truncated_tokens_classify_as_garbled() {
    use your_ad_value::crypto::{PriceCrypter, PriceKeys};
    let token = PriceCrypter::new(PriceKeys::derive("x")).encrypt(1_000_000, [3u8; 16]);
    let wire = token.to_wire();
    for cut in [1, 10, 37] {
        let truncated = &wire[..cut];
        let det = NurlDetector::classify_price(truncated);
        assert!(
            det.cleartext().is_none() && !det.is_encrypted(),
            "truncated token at {cut} must be garbled, got {det:?}"
        );
    }
}

#[test]
fn absurd_user_agents_fall_back() {
    use your_ad_value::analyzer::parse_user_agent;
    for ua in ["", "🦀🦀🦀", &"x".repeat(10_000), "\0\0\0", "Mozilla"] {
        let fp = parse_user_agent(ua);
        // Any answer is fine; it must be total and mobile-web-ish.
        assert_eq!(
            fp.interaction,
            your_ad_value::types::InteractionType::MobileWeb
        );
    }
}

#[test]
fn analyzer_is_total_over_mutated_real_traffic() {
    // Take genuine traffic and byte-flip the URLs; the pipeline must
    // survive every mutation.
    let generator = WeblogGenerator::new(your_ad_value::weblog::WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let log = generator.collect(&mut market);
    let mut analyzer = WeblogAnalyzer::new();
    for (i, r) in log.requests.iter().take(2000).enumerate() {
        let mut mutated = r.clone();
        let mut bytes = mutated.url.clone().into_bytes();
        if !bytes.is_empty() {
            let pos = (i * 31) % bytes.len();
            bytes[pos] = bytes[pos].wrapping_add(13);
        }
        mutated.url = String::from_utf8_lossy(&bytes).into_owned();
        analyzer.ingest(&mutated); // must not panic
    }
    let report = analyzer.finish();
    assert!(report.total_requests >= 2000);
}
