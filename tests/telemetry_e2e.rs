//! End-to-end telemetry: drive the whole pipeline once and check the
//! process-wide registry captured every stage, exporting cleanly as
//! Prometheus text and JSON.

use your_ad_value::prelude::*;

#[test]
fn pipeline_run_produces_a_full_snapshot() {
    // --- Drive every stage at test scale.
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = Market::new(MarketConfig::default());
    let mut analyzer = WeblogAnalyzer::new();
    let mut yav = YourAdValue::new(Some(City::Madrid));
    let mut requests = Vec::new();
    generator.run(&mut market, |req| requests.push(req.clone()), |_| {});
    for req in &requests {
        analyzer.ingest(req);
        yav.observe(req);
    }
    let universe = your_ad_value::weblog::PublisherUniverse::build(0xD474, 300, 120);
    let rows = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(2)).rows;
    let pme = Pme::new();
    pme.train_from_campaign(&rows, &TrainConfig::quick());
    yav.refresh_model(&pme);
    yav.observe(&requests[0]);
    yav.contribute_to(&pme);
    pme.set_baseline(&[1.0, 2.0, 3.0]);
    pme.recalibration_due(&[1.0, 2.0, 3.0], 0.05);

    // --- The snapshot covers all five pipeline stages, with real counts.
    let counters: std::collections::BTreeMap<String, u64> =
        telemetry::registry().counters().into_iter().collect();
    let stage_counters = [
        "weblog.generator.requests",
        "auction.market.runs",
        "nurl.template.matched",
        "pme.engine.rows_trained",
        "core.monitor.events",
        "campaign.executor.auctions_entered",
    ];
    for name in stage_counters {
        let value = counters.get(name).copied().unwrap_or(0);
        assert!(
            value > 0,
            "stage counter {name} missing or zero (counters: {counters:?})"
        );
    }
    // Drops are tracked both on the monitor and in the registry.
    let drops = yav.drop_stats();
    assert!(
        drops.not_notification > 0,
        "ordinary traffic must be counted"
    );
    assert_eq!(
        counters["core.monitor.nurl.not_notification"],
        drops.not_notification
    );

    // Span timers fired for the heavy stages.
    let histograms: std::collections::BTreeMap<String, _> =
        telemetry::registry().histograms().into_iter().collect();
    for name in [
        "weblog.generator.run.ms",
        "pme.engine.train.ms",
        "auction.market.run.ms",
    ] {
        assert!(
            histograms[name].count > 0,
            "span histogram {name} never recorded"
        );
    }
    // Charge histograms exist per exchange and their quantiles are sane.
    let charge = histograms
        .iter()
        .find(|(n, _)| n.starts_with("auction.market.charge_cpm."))
        .map(|(_, s)| *s)
        .expect("per-exchange charge histogram");
    assert!(charge.p50 > 0.0 && charge.p50 <= charge.p99);

    // --- Prometheus text: every sample line is `yav_* <value>`.
    let text = telemetry::prometheus_text();
    assert!(text.contains("# TYPE yav_auction_market_runs counter"));
    assert!(text.contains("# TYPE yav_pme_engine_estimate_vs_baseline_drift gauge"));
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("name/value pair");
        assert!(name.starts_with("yav_"), "bad prometheus name: {line}");
        assert!(
            value == "NaN" || value.parse::<f64>().is_ok(),
            "bad value: {line}"
        );
    }

    // --- JSON: parses, and mirrors the registry contents.
    let json = telemetry::json_snapshot();
    let value: serde_json::Value = serde_json::from_str(&json).expect("snapshot is valid JSON");
    let sections = value.as_object().expect("top-level object");
    let section = |key: &str| {
        sections
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_object())
            .unwrap_or_else(|| panic!("missing {key} section"))
    };
    assert_eq!(section("counters").len(), counters.len());
    assert!(!section("gauges").is_empty());
    assert_eq!(section("histograms").len(), histograms.len());
}
